package server

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"visualprint/internal/codec"
	"visualprint/internal/mathx"
	"visualprint/internal/pose"
	"visualprint/internal/sift"
)

// routerTestConfig makes Locate a pure function of database state (no
// wall-clock solver deadline) so bit-identity comparisons are meaningful,
// and trims the solver budget so the synthetic tests stay fast.
func routerTestConfig() DatabaseConfig {
	cfg := DefaultDatabaseConfig()
	cfg.Pose.Deadline = 0
	cfg.Pose.MaxIterations = 15
	return cfg
}

// syntheticCorpus builds a deterministic localizable workload (the bench
// package's geometry): a tight descriptor cluster on a wall-like slab whose
// keypoints are true pinhole projections from cam, plus scattered decoys.
func syntheticCorpus(seed int64, clusterN, scatterN, queryN int) ([]Mapping, []sift.Keypoint, pose.Intrinsics) {
	rng := rand.New(rand.NewSource(seed))
	center := mathx.Vec3{X: 4, Y: 1.5, Z: 7.5}
	ms := make([]Mapping, 0, clusterN+scatterN)
	for i := 0; i < clusterN; i++ {
		var m Mapping
		for j := range m.Desc {
			m.Desc[j] = byte(rng.Intn(256))
		}
		m.Pos = mathx.Vec3{
			X: center.X + rng.Float64()*5.6 - 2.8,
			Y: center.Y + rng.Float64()*1.4 - 0.7,
			Z: center.Z + rng.Float64()*0.8 - 0.4,
		}
		ms = append(ms, m)
	}
	for i := 0; i < scatterN; i++ {
		var m Mapping
		for j := range m.Desc {
			m.Desc[j] = byte(rng.Intn(256))
		}
		m.Pos = mathx.Vec3{X: rng.Float64() * 12, Y: rng.Float64() * 3, Z: rng.Float64() * 9}
		ms = append(ms, m)
	}
	intr := pose.Intrinsics{W: 200, H: 150, FovX: 1.1, FovY: 0.85}
	cam := mathx.Vec3{X: 4, Y: 1.4, Z: 2}
	cx, cy := float64(intr.W)/2, float64(intr.H)/2
	focal := cx / math.Tan(intr.FovX/2)
	kps := make([]sift.Keypoint, queryN)
	for i := range kps {
		kps[i].Desc = ms[i].Desc
		if i < clusterN {
			d := ms[i].Pos.Sub(cam)
			kps[i].X = cx + focal*d.X/d.Z
			kps[i].Y = cy - focal*d.Y/d.Z
		} else {
			kps[i].X = float64(10 + (i%16)*11)
			kps[i].Y = float64(8 + (i/16)*10)
		}
	}
	return ms, kps, intr
}

// ingestBatches ingests ms into the unsharded db and, with identical batch
// boundaries, into a fresh sharded venue on a router, so both see the same
// insertion order.
func shardedFixture(t testing.TB, cfg DatabaseConfig, shards int, ms []Mapping, batch int) (*Database, *Router, string) {
	t.Helper()
	single := newTestDB(t, cfg)
	def := newTestDB(t, cfg)
	r := NewRouter(def, cfg)
	const venueName = "test-venue"
	if err := r.ConfigureVenue(venueName, VenueConfig{Shards: shards}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(ms); i += batch {
		end := i + batch
		if end > len(ms) {
			end = len(ms)
		}
		if err := single.Ingest(context.Background(), ms[i:end]); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Ingest(context.Background(), venueName, ms[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if single.Len() != r.Len(venueName) {
		t.Fatalf("mapping counts diverge: single %d, venue %d", single.Len(), r.Len(venueName))
	}
	return single, r, venueName
}

// requireBitIdentical compares two locate outcomes down to the float bits:
// the scatter-gather merge must reproduce the single-database candidate
// list exactly, and the deterministic solver then reproduces the pose.
func requireBitIdentical(t *testing.T, single LocateResult, errS error, sharded LocateResult, errR error) {
	t.Helper()
	if (errS == nil) != (errR == nil) || (errS != nil && errS.Error() != errR.Error()) {
		t.Fatalf("locate errors diverge: single=%v sharded=%v", errS, errR)
	}
	if errS != nil {
		return
	}
	type bits struct{ px, py, pz, yaw, res uint64 }
	b := func(r LocateResult) bits {
		return bits{
			px:  math.Float64bits(r.Position.X),
			py:  math.Float64bits(r.Position.Y),
			pz:  math.Float64bits(r.Position.Z),
			yaw: math.Float64bits(r.Yaw),
			res: math.Float64bits(r.Residual),
		}
	}
	if b(single) != b(sharded) || single.Matched != sharded.Matched {
		t.Fatalf("locate results diverge at the bit level:\n single:  %+v\n sharded: %+v", single, sharded)
	}
	if single.Matched == 0 {
		t.Fatal("locate matched nothing; fixture too weak to be meaningful")
	}
}

// TestRouterLocateBitIdenticalSynthetic is the fast golden test: a 4-shard
// venue's scatter-gather Locate must equal the unsharded database's answer
// bit for bit (Float64bits-equal pose), on a deterministic synthetic corpus.
func TestRouterLocateBitIdenticalSynthetic(t *testing.T) {
	cfg := routerTestConfig()
	ms, kps, intr := syntheticCorpus(7, 160, 1500, 200)
	single, r, venueName := shardedFixture(t, cfg, 4, ms, 311)

	rs, errS := single.Locate(context.Background(), kps, intr)
	rr, errR := r.Locate(context.Background(), venueName, kps, intr)
	requireBitIdentical(t, rs, errS, rr, errR)

	// A query of pure decoys must fail identically too.
	decoys, _, _ := syntheticCorpus(99, 0, 64, 64)
	bad := make([]sift.Keypoint, len(decoys))
	for i := range bad {
		bad[i].Desc = decoys[i].Desc
		bad[i].X, bad[i].Y = float64(5+i%10*17), float64(4+i/10*13)
	}
	rs, errS = single.Locate(context.Background(), bad, intr)
	rr, errR = r.Locate(context.Background(), venueName, bad, intr)
	requireBitIdentical(t, rs, errS, rr, errR)
}

// TestRouterLocateBitIdenticalWardriven is the same golden property on a
// real wardriven corpus and rendered query — the shard partition here is
// whatever the spatial hash produces on realistic positions.
func TestRouterLocateBitIdenticalWardriven(t *testing.T) {
	if testing.Short() {
		t.Skip("wardriving a venue is slow")
	}
	cfg := DefaultDatabaseConfig()
	cfg.Pose.Deadline = 0
	w := testVenue()
	ms := wardriveMappings(t, w)
	kps, intr := queryKeypoints(t, w)
	single, r, venueName := shardedFixture(t, cfg, 4, ms, 700)

	rs, errS := single.Locate(context.Background(), kps, intr)
	rr, errR := r.Locate(context.Background(), venueName, kps, intr)
	requireBitIdentical(t, rs, errS, rr, errR)
}

// TestVenueIsolation pins the multi-tenant guarantee: a venue only ever
// answers from its own ingests. Cross-venue queries (and the untouched
// default venue) fail with ErrEmptyDatabase.
func TestVenueIsolation(t *testing.T) {
	cfg := routerTestConfig()
	def := newTestDB(t, cfg)
	r := NewRouter(def, cfg)
	ms, kps, intr := syntheticCorpus(7, 160, 800, 200)
	if _, err := r.Ingest(context.Background(), "venue-a", ms); err != nil {
		t.Fatal(err)
	}

	if _, err := r.Locate(context.Background(), "venue-a", kps, intr); err != nil {
		t.Fatalf("venue-a should localize its own data: %v", err)
	}
	if _, err := r.Locate(context.Background(), "venue-b", kps, intr); !errors.Is(err, ErrEmptyDatabase) {
		t.Fatalf("cross-venue query: got %v, want ErrEmptyDatabase", err)
	}
	if _, err := r.Locate(context.Background(), "", kps, intr); !errors.Is(err, ErrEmptyDatabase) {
		t.Fatalf("default venue query: got %v, want ErrEmptyDatabase", err)
	}
	if n := r.Len("venue-b"); n != 0 {
		t.Fatalf("venue-b reports %d mappings", n)
	}
	if got := r.Venues(); len(got) != 1 || got[0] != "venue-a" {
		t.Fatalf("Venues() = %v", got)
	}
}

// TestVenueOracleMergeEquality: the oracle assembled from a sharded venue's
// per-shard oracles must be byte-identical to the unsharded database's —
// counting filters add with saturation, the verification filter ORs, so the
// merge is exact, not approximate.
func TestVenueOracleMergeEquality(t *testing.T) {
	cfg := routerTestConfig()
	ms, _, _ := syntheticCorpus(21, 120, 900, 120)
	single, r, venueName := shardedFixture(t, cfg, 4, ms, 257)

	blobS, err := single.OracleBlob()
	if err != nil {
		t.Fatal(err)
	}
	blobV, err := r.OracleBlob(venueName)
	if err != nil {
		t.Fatal(err)
	}
	rawS, err := codec.Gunzip(blobS)
	if err != nil {
		t.Fatal(err)
	}
	rawV, err := codec.Gunzip(blobV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawS, rawV) {
		t.Fatalf("merged venue oracle differs from unsharded oracle (%d vs %d bytes)", len(rawV), len(rawS))
	}
}

// TestVenuePersistenceRoundTrip: a durable sharded venue recovers its
// topology (meta.json), every shard's data, and the venue sequence counter,
// and keeps answering bit-identically after a reopen.
func TestVenuePersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := routerTestConfig()
	ms, kps, intr := syntheticCorpus(7, 160, 900, 200)
	const venueName = "airport-t2"

	def1 := newTestDB(t, cfg)
	r1 := NewRouter(def1, cfg)
	if err := r1.ConfigureVenue(venueName, VenueConfig{Shards: 3}); err != nil {
		t.Fatal(err)
	}
	if err := r1.OpenVenues(dir); err != nil {
		t.Fatal(err)
	}
	half := len(ms) / 2
	if _, err := r1.Ingest(context.Background(), venueName, ms[:half]); err != nil {
		t.Fatal(err)
	}
	before, errBefore := r1.Locate(context.Background(), venueName, kps, intr)
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	// The on-disk layout is part of the format contract.
	vdir := filepath.Join(dir, venuesSubdir, venueName)
	if _, err := os.Stat(filepath.Join(vdir, venueMetaFile)); err != nil {
		t.Fatalf("venue meta: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := os.Stat(filepath.Join(vdir, shardDirName(i))); err != nil {
			t.Fatalf("shard dir %d: %v", i, err)
		}
	}

	def2 := newTestDB(t, cfg)
	r2 := NewRouter(def2, cfg)
	if err := r2.OpenVenues(dir); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer r2.Close()
	if n := r2.Len(venueName); n != half {
		t.Fatalf("recovered %d mappings, want %d", n, half)
	}
	after, errAfter := r2.Locate(context.Background(), venueName, kps, intr)
	if (errBefore == nil) != (errAfter == nil) {
		t.Fatalf("pre/post-restart locate errors diverge: %v vs %v", errBefore, errAfter)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("recovered venue answers differently:\n before: %+v\n after:  %+v", before, after)
	}

	// The recovered sequence counter must continue where the venue left
	// off: appending the rest of the corpus must reproduce the unsharded
	// database over the full corpus, bit for bit.
	if _, err := r2.Ingest(context.Background(), venueName, ms[half:]); err != nil {
		t.Fatal(err)
	}
	single := newTestDB(t, cfg)
	if err := single.Ingest(context.Background(), ms[:half]); err != nil {
		t.Fatal(err)
	}
	if err := single.Ingest(context.Background(), ms[half:]); err != nil {
		t.Fatal(err)
	}
	rs, errS := single.Locate(context.Background(), kps, intr)
	rr, errR := r2.Locate(context.Background(), venueName, kps, intr)
	requireBitIdentical(t, rs, errS, rr, errR)
}

// TestVenueConfigRules pins the topology lifecycle: invalid names are
// rejected, live venues cannot be re-configured, and multi-shard venues
// have no incremental oracle diff (the dispatch layer falls back to a full
// blob).
func TestVenueConfigRules(t *testing.T) {
	cfg := routerTestConfig()
	def := newTestDB(t, cfg)
	r := NewRouter(def, cfg)
	for _, bad := range []string{"", ".hidden", "UPPER", "spa ce", "a/b"} {
		if err := r.ConfigureVenue(bad, VenueConfig{Shards: 2}); err == nil {
			t.Errorf("ConfigureVenue(%q) accepted an invalid name", bad)
		}
	}
	if err := r.ConfigureVenue("live", VenueConfig{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	ms, _, _ := syntheticCorpus(3, 0, 32, 0)
	if _, err := r.Ingest(context.Background(), "live", ms); err != nil {
		t.Fatal(err)
	}
	if err := r.ConfigureVenue("live", VenueConfig{Shards: 4}); err == nil {
		t.Error("re-configuring a live venue must fail (no live resharding)")
	}
	if _, ok, err := r.OracleDiff("live", 1); err != nil || ok {
		t.Errorf("multi-shard OracleDiff: ok=%v err=%v, want unavailable", ok, err)
	}
}
