package server

import (
	"errors"
	"strings"
)

// Typed localization failures returned by Database.Locate. They cross the
// wire as stable one-byte codes in the msgError payload, so a networked
// caller can errors.Is against them instead of matching message text.
var (
	// ErrEmptyDatabase: the server has no ingested mappings to match
	// against.
	ErrEmptyDatabase = errors.New("server: database is empty")
	// ErrTooFewMatches: fewer than three query keypoints survived LSH
	// retrieval and distance gating (the paper's failure mode 1/2 —
	// featureless frames or unmapped areas).
	ErrTooFewMatches = errors.New("server: too few keypoint matches")
	// ErrNoConsensus: candidate 3D points formed no spatial cluster
	// (failure mode 3 — matches scattered across the venue).
	ErrNoConsensus = errors.New("server: no spatial consensus among matches")
)

// Wire error codes: the first byte of every msgError payload, followed by
// the human-readable message. Codes are append-only and stable across
// protocol versions.
const (
	errCodeGeneric       byte = 0
	errCodeEmptyDatabase byte = 1
	errCodeTooFewMatches byte = 2
	errCodeNoConsensus   byte = 3
)

// errorCode maps a server-side error to its wire code.
func errorCode(err error) byte {
	switch {
	case errors.Is(err, ErrEmptyDatabase):
		return errCodeEmptyDatabase
	case errors.Is(err, ErrTooFewMatches):
		return errCodeTooFewMatches
	case errors.Is(err, ErrNoConsensus):
		return errCodeNoConsensus
	default:
		return errCodeGeneric
	}
}

// sentinelFor is errorCode's inverse on the client; generic and unknown
// codes have no sentinel.
func sentinelFor(code byte) error {
	switch code {
	case errCodeEmptyDatabase:
		return ErrEmptyDatabase
	case errCodeTooFewMatches:
		return ErrTooFewMatches
	case errCodeNoConsensus:
		return ErrNoConsensus
	default:
		return nil
	}
}

// encodeErrorPayload builds a msgError payload: [code][message].
func encodeErrorPayload(err error) []byte {
	msg := err.Error()
	buf := make([]byte, 1+len(msg))
	buf[0] = errorCode(err)
	copy(buf[1:], msg)
	return buf
}

// decodeErrorPayload reconstructs the remote error, re-attaching the typed
// sentinel so errors.Is works across the wire.
func decodeErrorPayload(p []byte) error {
	if len(p) == 0 {
		return errRemote{msg: "unspecified error"}
	}
	return errRemote{code: p[0], msg: string(p[1:])}
}

// errRemote wraps a server-reported error.
type errRemote struct {
	code byte
	msg  string
}

func (e errRemote) Error() string {
	// Sentinel messages already carry a "server: " prefix; don't stutter.
	if strings.HasPrefix(e.msg, "server: ") {
		return "visualprint " + e.msg
	}
	return "visualprint server: " + e.msg
}

// Unwrap exposes the typed sentinel matching the wire code, if any.
func (e errRemote) Unwrap() error { return sentinelFor(e.code) }

// IsRemote reports whether err was returned by the server (as opposed to a
// transport failure).
func IsRemote(err error) bool {
	var r errRemote
	return errors.As(err, &r)
}
