package server

import (
	"context"
	"errors"
	"strings"
)

// Typed localization failures returned by Database.Locate. They cross the
// wire as stable one-byte codes in the msgError payload, so a networked
// caller can errors.Is against them instead of matching message text.
var (
	// ErrEmptyDatabase: the server has no ingested mappings to match
	// against.
	ErrEmptyDatabase = errors.New("server: database is empty")
	// ErrTooFewMatches: fewer than three query keypoints survived LSH
	// retrieval and distance gating (the paper's failure mode 1/2 —
	// featureless frames or unmapped areas).
	ErrTooFewMatches = errors.New("server: too few keypoint matches")
	// ErrNoConsensus: candidate 3D points formed no spatial cluster
	// (failure mode 3 — matches scattered across the venue).
	ErrNoConsensus = errors.New("server: no spatial consensus among matches")
)

// Request-lifecycle failures. Like the localization sentinels they travel
// as stable wire codes, so errors.Is works identically for an in-process
// Database call and a networked Query.
var (
	// ErrOverloaded: the server's dispatch queue was full and the request
	// was shed before any work was done. Always safe to retry (after
	// backoff) — the request never executed.
	ErrOverloaded = errors.New("server: overloaded, request shed")
	// ErrShuttingDown: the server is draining; it finishes in-flight work
	// but accepts nothing new. Not retryable against the same server.
	ErrShuttingDown = errors.New("server: shutting down")
	// ErrDeadlineExceeded: the request's deadline expired before the
	// pipeline finished; the server abandoned the remaining work.
	// errors.Is(err, context.DeadlineExceeded) also matches, locally and
	// across the wire.
	ErrDeadlineExceeded error = &ctxSentinel{msg: "server: request deadline exceeded", match: context.DeadlineExceeded}
	// ErrCanceled: the request was canceled (client cancel message,
	// connection death, or a canceled local context) mid-pipeline.
	// errors.Is(err, context.Canceled) also matches.
	ErrCanceled error = &ctxSentinel{msg: "server: request canceled", match: context.Canceled}
	// ErrNotPrimary: the request needs the primary (a write sent to a
	// replica, or a replica read past its staleness bound) and this server
	// is not it. The concrete error is a *NotPrimaryError whose Primary
	// field, when non-empty, is the address to redirect to; the client
	// follows it automatically.
	ErrNotPrimary = errors.New("server: not the primary")
)

// NotPrimaryError is the concrete redirect error behind ErrNotPrimary. It
// crosses the wire as code errCodeNotPrimary with the primary's advertised
// address as the payload message, so the redirect survives serialization.
type NotPrimaryError struct {
	// Primary is the current primary's address as last known by the
	// rejecting server; empty when the fleet has no primary (mid-failover).
	Primary string
}

func (e *NotPrimaryError) Error() string {
	if e.Primary == "" {
		return "server: not the primary"
	}
	return "server: not the primary (primary is " + e.Primary + ")"
}

// Is makes errors.Is(err, ErrNotPrimary) match any redirect error.
func (e *NotPrimaryError) Is(target error) bool { return target == ErrNotPrimary }

// ctxSentinel is a sentinel that additionally matches the context error it
// stands for, so callers using the standard library's identities keep
// working: errors.Is(err, context.DeadlineExceeded) is true for a
// wire-decoded ErrDeadlineExceeded.
type ctxSentinel struct {
	msg   string
	match error
}

func (e *ctxSentinel) Error() string { return e.msg }

func (e *ctxSentinel) Is(target error) bool { return target == e.match }

// ctxError converts a non-nil context error into its typed request
// lifecycle sentinel; other errors pass through.
func ctxError(err error) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadlineExceeded
	case errors.Is(err, context.Canceled):
		return ErrCanceled
	}
	return err
}

// Wire error codes: the first byte of every msgError payload, followed by
// the human-readable message. Codes are append-only and stable across
// protocol versions.
const (
	errCodeGeneric          byte = 0
	errCodeEmptyDatabase    byte = 1
	errCodeTooFewMatches    byte = 2
	errCodeNoConsensus      byte = 3
	errCodeOverloaded       byte = 4
	errCodeDeadlineExceeded byte = 5
	errCodeShuttingDown     byte = 6
	errCodeCanceled         byte = 7
	errCodeNotPrimary       byte = 8
)

// errorCode maps a server-side error to its wire code. Raw context errors
// are classified alongside the typed sentinels so a handler can return
// ctx.Err() unconverted and still cross the wire typed.
func errorCode(err error) byte {
	switch {
	case errors.Is(err, ErrEmptyDatabase):
		return errCodeEmptyDatabase
	case errors.Is(err, ErrTooFewMatches):
		return errCodeTooFewMatches
	case errors.Is(err, ErrNoConsensus):
		return errCodeNoConsensus
	case errors.Is(err, ErrOverloaded):
		return errCodeOverloaded
	case errors.Is(err, ErrShuttingDown):
		return errCodeShuttingDown
	case errors.Is(err, context.DeadlineExceeded):
		return errCodeDeadlineExceeded
	case errors.Is(err, context.Canceled):
		return errCodeCanceled
	case errors.Is(err, ErrNotPrimary):
		return errCodeNotPrimary
	default:
		return errCodeGeneric
	}
}

// sentinelFor is errorCode's inverse on the client; generic and unknown
// codes have no sentinel.
func sentinelFor(code byte) error {
	switch code {
	case errCodeEmptyDatabase:
		return ErrEmptyDatabase
	case errCodeTooFewMatches:
		return ErrTooFewMatches
	case errCodeNoConsensus:
		return ErrNoConsensus
	case errCodeOverloaded:
		return ErrOverloaded
	case errCodeDeadlineExceeded:
		return ErrDeadlineExceeded
	case errCodeShuttingDown:
		return ErrShuttingDown
	case errCodeCanceled:
		return ErrCanceled
	case errCodeNotPrimary:
		return ErrNotPrimary
	default:
		return nil
	}
}

// encodeErrorPayload builds a msgError payload: [code][message]. The
// not-primary code repurposes the message bytes as the redirect address —
// structured data, not prose — so the client can reconnect without parsing
// human text.
func encodeErrorPayload(err error) []byte {
	msg := err.Error()
	var npe *NotPrimaryError
	if errors.As(err, &npe) {
		msg = npe.Primary
	}
	buf := make([]byte, 1+len(msg))
	buf[0] = errorCode(err)
	copy(buf[1:], msg)
	return buf
}

// decodeErrorPayload reconstructs the remote error, re-attaching the typed
// sentinel so errors.Is works across the wire.
func decodeErrorPayload(p []byte) error {
	if len(p) == 0 {
		return errRemote{msg: "unspecified error"}
	}
	if p[0] == errCodeNotPrimary {
		return &NotPrimaryError{Primary: string(p[1:])}
	}
	return errRemote{code: p[0], msg: string(p[1:])}
}

// errRemote wraps a server-reported error.
type errRemote struct {
	code byte
	msg  string
}

func (e errRemote) Error() string {
	// Sentinel messages already carry a "server: " prefix; don't stutter.
	if strings.HasPrefix(e.msg, "server: ") {
		return "visualprint " + e.msg
	}
	return "visualprint server: " + e.msg
}

// Unwrap exposes the typed sentinel matching the wire code, if any.
func (e errRemote) Unwrap() error { return sentinelFor(e.code) }

// IsRemote reports whether err was returned by the server (as opposed to a
// transport failure).
func IsRemote(err error) bool {
	var r errRemote
	return errors.As(err, &r)
}
