package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"visualprint/internal/mathx"
	"visualprint/internal/pose"
	"visualprint/internal/sift"
	"visualprint/internal/testutil"
)

// TestMain sweeps for leaked server/store/client goroutines after the full
// suite: a dispatch loop, demux loop, WAL committer or snapshotter still
// running once every test (and its Close cleanups) finished is a bug.
func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := testutil.VerifyNone(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	os.Exit(code)
}

// TestMetricsRPCEndToEnd drives a loaded server and requires the metrics
// report to reflect the traffic: request counters per type, error-code
// counters, the mappings gauge, and latency histograms for the locate
// pipeline.
func TestMetricsRPCEndToEnd(t *testing.T) {
	testutil.CheckGoroutines(t)
	s, _ := startServer(t)
	c := dialClient(t, s)
	ctx := context.Background()

	// One query against the empty database: a counted request AND a typed
	// error, attributed to its wire code.
	kps := make([]sift.Keypoint, 3)
	_, err := c.Query(ctx, kps, pose.Intrinsics{W: 100, H: 100, FovX: 1, FovY: 1})
	if !errors.Is(err, ErrEmptyDatabase) {
		t.Fatalf("query on empty db: %v", err)
	}

	ms := make([]Mapping, 10)
	for i := range ms {
		ms[i].Desc[0] = byte(i)
		ms[i].Pos = mathx.Vec3{X: float64(i)}
	}
	if _, err := c.Ingest(ctx, ms); err != nil {
		t.Fatal(err)
	}

	rep, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantCounters := map[string]uint64{
		"requests_query":        1,
		"requests_ingest":       1,
		"errors_empty_database": 1,
		"locates":               1,
		"locate_errors":         1,
		"ingests":               1,
	}
	for name, want := range wantCounters {
		if got := rep.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	if rep.Counters["bytes_in"] == 0 || rep.Counters["bytes_out"] == 0 {
		t.Error("byte counters not advancing")
	}
	if got := rep.Gauges["mappings"]; got != 10 {
		t.Errorf("mappings gauge = %d, want 10", got)
	}
	for _, h := range []string{"locate_ns", "ingest_ns", "request_query_ns", "request_ingest_ns"} {
		hs, ok := rep.Histograms[h]
		if !ok || hs.Count == 0 {
			t.Errorf("histogram %s missing or empty: %+v", h, hs)
			continue
		}
		if hs.P99 < hs.P50 || hs.Max <= 0 {
			t.Errorf("histogram %s quantiles inconsistent: %+v", h, hs)
		}
	}
	if rep.UptimeSeconds < 0 {
		t.Errorf("uptime %f", rep.UptimeSeconds)
	}

	// The metrics request itself is booked after its dispatch returns, so
	// it shows up from the second call on.
	rep2, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Counters["requests_metrics"] == 0 {
		t.Error("metrics requests not counted")
	}
}

// TestMetricsFeedsStageHistograms requires a real (non-trivially-failing)
// query to leave per-stage timings behind.
func TestMetricsFeedsStageHistograms(t *testing.T) {
	testutil.CheckGoroutines(t)
	s, _ := startServer(t)
	c := dialClient(t, s)
	ctx := context.Background()

	ms := make([]Mapping, 64)
	for i := range ms {
		for j := range ms[i].Desc {
			ms[i].Desc[j] = byte((i*31 + j*7) % 256)
		}
		ms[i].Pos = mathx.Vec3{X: float64(i % 8), Y: float64(i / 8)}
	}
	if _, err := c.Ingest(ctx, ms); err != nil {
		t.Fatal(err)
	}
	// Query with descriptors present in the database so LSH retrieval runs
	// (the query may still fail clustering — stage timing is the point).
	kps := make([]sift.Keypoint, 8)
	for i := range kps {
		kps[i].Desc = ms[i].Desc
		kps[i].X, kps[i].Y = float64(10*i), float64(5*i)
	}
	_, _ = c.Query(ctx, kps, pose.Intrinsics{W: 100, H: 100, FovX: 1, FovY: 1})

	rep, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if hs := rep.Histograms["stage_lsh_query_ns"]; hs.Count == 0 {
		t.Errorf("lsh_query stage not timed: %+v", rep.Histograms)
	}
}

// fakeLegacyServer speaks v2 framing but predates the metrics RPC: every
// request gets the "unknown message type" rejection an old binary's
// dispatch default arm produces.
func fakeLegacyServer(t *testing.T) net.Addr {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				var pre [preambleSize]byte
				if _, err := io.ReadFull(conn, pre[:]); err != nil {
					return
				}
				for {
					id, typ, _, err := readFrameV2(conn)
					if err != nil {
						return
					}
					rt, resp := errorResponse(fmt.Errorf("unknown message type %d", typ))
					if err := writeFrameV2(conn, id, rt, resp); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr()
}

// TestMetricsAgainstOldServerFallsBackTyped pins the compatibility
// contract: a Metrics call against a server predating the RPC fails with
// ErrMetricsUnsupported, not an opaque remote error.
func TestMetricsAgainstOldServerFallsBackTyped(t *testing.T) {
	testutil.CheckGoroutines(t)
	addr := fakeLegacyServer(t)
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Metrics(context.Background())
	if !errors.Is(err, ErrMetricsUnsupported) {
		t.Fatalf("want ErrMetricsUnsupported, got %v", err)
	}
	// The connection stays usable for RPCs that do not exist either — the
	// point is only that the error is typed, not sticky.
	if _, err := c.Metrics(context.Background()); !errors.Is(err, ErrMetricsUnsupported) {
		t.Fatalf("second call: %v", err)
	}
}

// TestMetricsDisabledServerReportsUnsupported covers the other unavailable
// case: a current server constructed without Serve (no registry).
func TestMetricsDisabledServerReportsUnsupported(t *testing.T) {
	testutil.CheckGoroutines(t)
	db, err := NewDatabase(DefaultDatabaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := &Server{db: db}
	cliConn, srvConn := net.Pipe()
	done := make(chan struct{})
	go func() { defer close(done); s.ServeConn(srvConn) }()
	c := NewClient(cliConn)
	defer func() { c.Close(); <-done }()
	if _, err := c.Metrics(context.Background()); !errors.Is(err, ErrMetricsUnsupported) {
		t.Fatalf("want ErrMetricsUnsupported, got %v", err)
	}
}

// TestServerCloseMidRequestFailsTyped kills the transport with a request
// in flight: the call must fail promptly with ErrConnectionLost (not hang,
// not return a garbled response), later calls must fail the same way, and
// the demux goroutine must exit.
func TestServerCloseMidRequestFailsTyped(t *testing.T) {
	testutil.CheckGoroutines(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		var pre [preambleSize]byte
		io.ReadFull(conn, pre[:])
		readFrameV2(conn) // swallow the request, answer nothing
		conn.Close()      // ... and die with it in flight
		accepted <- conn
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	_, err = c.Stats(ctx)
	if !errors.Is(err, ErrConnectionLost) {
		t.Fatalf("want ErrConnectionLost, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("failure took %v; want prompt", elapsed)
	}
	<-accepted
	// The broken transport is sticky and still typed.
	if _, err := c.Stats(context.Background()); !errors.Is(err, ErrConnectionLost) {
		t.Fatalf("second call: %v", err)
	}
}

// TestDialDeadServerFailsPromptly: a client whose transport died before
// the preamble behaves like one that lost it later — typed error, no
// demux goroutine left behind.
func TestDialDeadServerFailsPromptly(t *testing.T) {
	testutil.CheckGoroutines(t)
	cliConn, srvConn := net.Pipe()
	srvConn.Close()
	cliConn.Close() // preamble write fails immediately
	c := NewClient(cliConn)
	if _, err := c.Stats(context.Background()); !errors.Is(err, ErrConnectionLost) {
		t.Fatalf("want ErrConnectionLost, got %v", err)
	}

	// And an address nobody listens on fails at Dial with no client (and
	// no goroutine) created at all.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial(addr); err == nil {
		t.Fatal("Dial to dead address succeeded")
	}
}
