package server

import (
	"bytes"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"visualprint/internal/core"
	"visualprint/internal/lsh"
	"visualprint/internal/mathx"
	"visualprint/internal/sift"
)

// RCU read snapshots.
//
// The database's query-side state — LSH index, positions, oracle, bounds,
// sequence tags — lives in an immutable dbView published through an
// atomic.Pointer. Readers (Locate, Stats, oracle scoring, the Router's
// scatter path) pin the current view, read it without any lock, and unpin;
// db.mu now guards only the write path (ingest, recovery, snapshot window
// bookkeeping) and the store fields.
//
// Writes use two alternating generations, RCU-style:
//
//  1. ensure a shadow view exists (a deep clone of the published view;
//     lazily rebuilt only after a wholesale replace, so steady-state ingest
//     never re-clones),
//  2. apply the batch to the shadow,
//  3. publish: swap the shadow in as the live view,
//  4. grace period: wait until every reader pinned to the old view drains,
//  5. apply the same batch to the retired view, which becomes the next
//     shadow.
//
// Each batch is applied twice through the identical code path, so the two
// generations stay byte-equal and ingest cost is O(batch), not O(database).
// The grace period is bounded by the slowest in-flight read (a Locate is
// tens of milliseconds); because views are only re-published once they are
// again immutable, the pointer-equality validation in pinView is ABA-safe.
//
// Deadlock rule: never acquire db.mu while holding a pin. The publisher
// holds db.mu and waits for pins to drain, so a reader that pinned and then
// queued on db.mu would deadlock the pair. Readers that need both (Stats)
// pin, read, unpin — then take the mutex separately.

// dbView is one immutable generation of the query-side state. All fields
// except pins are frozen from publish until retire; pins is the only field
// readers write.
type dbView struct {
	index     *lsh.Index
	positions []mathx.Vec3
	oracle    *core.Oracle
	lo, hi    mathx.Vec3
	hasBounds bool
	seqs      []uint64
	maxSeq    uint64
	// epoch is the oracle version: the count of ingest batches ever applied
	// to this database. On a durable database it is anchored to the store's
	// record sequence (one WAL record per batch), so it survives restarts
	// and replays identically on replicas — the version identity clients
	// cite in OracleSync requests.
	epoch uint64

	pins pinSet
}

// pinShards spreads reader pin counts across cache lines so concurrent
// Locates on different cores don't serialize on one hot counter word.
const pinShards = 16

type pinShard struct {
	n atomic.Int64
	_ [56]byte // pad to a cache line; neighbors never false-share
}

// pinSet counts active readers of a view, sharded. A view's publisher
// retires it by waiting for every shard to drain (see wait).
type pinSet [pinShards]pinShard

func (ps *pinSet) add(slot int, d int64) { ps[slot].n.Add(d) }

// wait blocks until no validated reader holds a pin on this view. Per-shard
// argument: a reader pins and validates against the then-current pointer
// with seq-cst atomics, so once the view is unpublished, any pin that could
// still validate must already be visible to this sum — a shard observed at
// zero after the swap can never again carry a validated pin for this view.
// (Unvalidated transient increments from racing readers retry against the
// new view and decrement immediately; the loop absorbs them.)
func (ps *pinSet) wait() {
	for i := 0; ; i++ {
		clear := true
		for s := range ps {
			if ps[s].n.Load() != 0 {
				clear = false
				break
			}
		}
		if clear {
			return
		}
		if i < 128 {
			runtime.Gosched()
		} else {
			// Readers hold pins for whole Locates (tens of ms); parking
			// beats burning a core once the quick drains are exhausted.
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// pinToken carries a reader's shard assignment. Tokens are pooled so a
// goroutine reuses the same shard across queries instead of contending on a
// global counter per read.
type pinToken struct{ slot int }

var pinSlotSeq atomic.Uint64

var pinTokens = sync.Pool{New: func() any {
	return &pinToken{slot: int(pinSlotSeq.Add(1) % pinShards)}
}}

// pinView pins and returns the current published view. The pin-then-revalidate
// loop closes the race with a concurrent publish: if the pointer moved after
// we pinned, the publisher may already have missed our pin, so we back out
// and retry against the new view. Callers must release with unpin and must
// not acquire db.mu while pinned (see the deadlock rule above).
func (db *Database) pinView() (*dbView, *pinToken) {
	t := pinTokens.Get().(*pinToken)
	for {
		v := db.cur.Load()
		v.pins.add(t.slot, 1)
		if db.cur.Load() == v {
			return v, t
		}
		v.pins.add(t.slot, -1)
	}
}

// unpin releases a pinned view and recycles the token.
func (db *Database) unpin(v *dbView, t *pinToken) {
	v.pins.add(t.slot, -1)
	pinTokens.Put(t)
}

// newEmptyView builds a fresh empty generation from the configuration.
func newEmptyView(cfg DatabaseConfig) (*dbView, error) {
	ix, err := lsh.NewIndex(cfg.LSH)
	if err != nil {
		return nil, err
	}
	o, err := core.New(cfg.Oracle)
	if err != nil {
		return nil, err
	}
	return &dbView{index: ix, oracle: o}, nil
}

// clone deep-copies a view into a detached, mutable twin. The LSH index is
// round-tripped through its serialization, which preserves per-bucket
// insertion order — the property that keeps queries against the clone
// candidate-for-candidate identical to the original. Only needed after a
// wholesale replace (open, reset, full-sync); steady-state ingest recycles
// the retired generation instead.
func (v *dbView) clone() (*dbView, error) {
	var buf bytes.Buffer
	if _, err := v.index.WriteTo(&buf); err != nil {
		return nil, err
	}
	ix, err := lsh.ReadIndex(&buf)
	if err != nil {
		return nil, err
	}
	o, err := v.oracle.Clone()
	if err != nil {
		return nil, err
	}
	return &dbView{
		index:     ix,
		positions: slices.Clone(v.positions),
		oracle:    o,
		lo:        v.lo,
		hi:        v.hi,
		hasBounds: v.hasBounds,
		seqs:      slices.Clone(v.seqs),
		maxSeq:    v.maxSeq,
		epoch:     v.epoch,
	}, nil
}

// apply incorporates mappings into this (unpublished) view. It is the
// single mutation path, shared by live ingest (which runs it once on each
// generation), WAL replay and replica catch-up. seqs is nil on a plain
// database and parallel to ms on a shard engine.
func (v *dbView) apply(ms []Mapping, seqs []uint64) error {
	for i := range ms {
		desc := make([]byte, sift.DescriptorSize)
		copy(desc, ms[i].Desc[:])
		if _, err := v.index.Insert(desc); err != nil {
			return err
		}
		if err := v.oracle.Insert(desc); err != nil {
			return err
		}
		v.positions = append(v.positions, ms[i].Pos)
		if seqs != nil {
			v.seqs = append(v.seqs, seqs[i])
			if seqs[i] > v.maxSeq {
				v.maxSeq = seqs[i]
			}
		}
		p := ms[i].Pos
		if !v.hasBounds {
			v.lo, v.hi = p, p
			v.hasBounds = true
			continue
		}
		v.lo.X = math.Min(v.lo.X, p.X)
		v.lo.Y = math.Min(v.lo.Y, p.Y)
		v.lo.Z = math.Min(v.lo.Z, p.Z)
		v.hi.X = math.Max(v.hi.X, p.X)
		v.hi.Y = math.Max(v.hi.Y, p.Y)
		v.hi.Z = math.Max(v.hi.Z, p.Z)
	}
	return nil
}

// publishLocked installs next as the live view and waits out the grace
// period on the view it replaces, which it returns — retired, unobserved,
// and safe to mutate. Callers hold db.mu.
func (db *Database) publishLocked(next *dbView) *dbView {
	old := db.cur.Swap(next)
	if old != nil {
		old.pins.wait()
	}
	return old
}

// applyPublishLocked runs one ingest batch through the double-generation
// protocol: apply to the shadow, publish it, apply to the retired view,
// keep it as the next shadow. On any error the shadow is discarded and the
// published view is left untouched (a clean generation is re-cloned on the
// next batch). Callers hold db.mu.
func (db *Database) applyPublishLocked(ms []Mapping, seqs []uint64) error {
	if db.shadow == nil {
		sh, err := db.cur.Load().clone()
		if err != nil {
			return err
		}
		db.shadow = sh
	}
	next := db.shadow
	db.shadow = nil
	if err := next.apply(ms, seqs); err != nil {
		return err
	}
	// Version the batch: the pre-batch published view and the post-batch
	// shadow are both stable here (publishing requires db.mu), which is the
	// one window where the epoch's cell-wise delta can be computed against
	// immutable endpoints.
	cur := db.cur.Load()
	next.epoch = cur.epoch + 1
	db.recordDeltaLocked(cur, next)
	old := db.publishLocked(next)
	db.bumpEpochLocked()
	if err := old.apply(ms, seqs); err != nil {
		// The published generation is complete; only the would-be shadow is
		// torn. Drop it and let the next batch re-clone.
		return err
	}
	old.epoch = next.epoch
	db.shadow = old
	return nil
}
