package server

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// startVenueServer serves a deterministic-config database over TCP (venue
// routing is always on for a Serve-built server) and returns it.
func startVenueServer(t testing.TB) *Server {
	t.Helper()
	db := newTestDB(t, routerTestConfig())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln, db)
	s.Log = nil
	t.Cleanup(func() { s.Close() })
	return s
}

// oldServerStub speaks the pre-venue wire behavior over the server end of a
// pipe: it rejects msgRequestEx and msgVenueEx as unknown types (exactly as
// the old dispatch switch did) and answers anything else with a canned
// success. It records the frame types it saw.
func oldServerStub(t testing.TB, serverEnd net.Conn) func() []byte {
	t.Helper()
	var mu sync.Mutex
	var typesSeen []byte
	go func() {
		hdr := make([]byte, preambleSize)
		if _, err := io.ReadFull(serverEnd, hdr); err != nil {
			return
		}
		for {
			id, typ, _, err := readFrameV2(serverEnd)
			if err != nil {
				return
			}
			mu.Lock()
			typesSeen = append(typesSeen, typ)
			mu.Unlock()
			switch typ {
			case msgRequestEx:
				writeFrameV2(serverEnd, id, msgError, encodeErrorPayload(errors.New("unknown message type 14")))
			case msgVenueEx:
				writeFrameV2(serverEnd, id, msgError, encodeErrorPayload(errors.New("unknown message type 16")))
			default:
				ack := make([]byte, 8)
				writeFrameV2(serverEnd, id, msgStatsResult, ack)
			}
		}
	}()
	return func() []byte {
		mu.Lock()
		defer mu.Unlock()
		return append([]byte(nil), typesSeen...)
	}
}

// TestVenueUnsupportedOldServerMatrix: every venue-scoped request type
// against a server predating msgVenueEx fails with the typed
// ErrVenueUnsupported — no silent fallback onto the default venue — and the
// rejection is sticky (later calls fail locally, without a round trip).
func TestVenueUnsupportedOldServerMatrix(t *testing.T) {
	ms, kps, intr := syntheticCorpus(5, 8, 8, 8)
	calls := map[string]func(ctx context.Context, c *Client) error{
		"Query": func(ctx context.Context, c *Client) error {
			_, err := c.Query(ctx, kps, intr)
			return err
		},
		"Ingest": func(ctx context.Context, c *Client) error {
			_, err := c.Ingest(ctx, ms)
			return err
		},
		"Stats": func(ctx context.Context, c *Client) error {
			_, err := c.Stats(ctx)
			return err
		},
		"FetchOracle": func(ctx context.Context, c *Client) error {
			_, _, err := c.FetchOracle(ctx)
			return err
		},
	}
	for name, call := range calls {
		t.Run(name, func(t *testing.T) {
			clientEnd, serverEnd := net.Pipe()
			defer clientEnd.Close()
			defer serverEnd.Close()
			seen := oldServerStub(t, serverEnd)
			c := NewClient(clientEnd, WithLogger(nil), WithVenue("airport-t2"))
			defer c.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()

			err := call(ctx, c)
			if !errors.Is(err, ErrVenueUnsupported) {
				t.Fatalf("%s against old server: got %v, want ErrVenueUnsupported", name, err)
			}
			wireCalls := len(seen())
			// Sticky: the second call must fail without touching the wire.
			err = call(ctx, c)
			if !errors.Is(err, ErrVenueUnsupported) {
				t.Fatalf("second %s: got %v, want ErrVenueUnsupported", name, err)
			}
			if n := len(seen()); n != wireCalls {
				t.Fatalf("second %s hit the wire (%d frames, was %d): venue rejection not sticky", name, n, wireCalls)
			}
		})
	}
}

// TestDeadlineFallbackDoesNotDisableVenues: the two envelope fallbacks are
// independent. A server that rejects the deadline envelope (msgRequestEx)
// but understands venues must not trip the venue-unsupported latch — the
// unknown-type detection is per message type.
func TestDeadlineFallbackDoesNotDisableVenues(t *testing.T) {
	s := startVenueServer(t)
	c, err := Dial(s.Addr().String(), WithVenue("venue-a"), WithLogger(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ms, kps, intr := syntheticCorpus(7, 160, 500, 200)
	// Deadline-bearing context: requests travel msgRequestEx(msgVenueEx(...)).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.Ingest(ctx, ms); err != nil {
		t.Fatalf("venue ingest under deadline: %v", err)
	}
	if _, err := c.Query(ctx, kps, intr); err != nil {
		t.Fatalf("venue query under deadline: %v", err)
	}
}

// TestOldClientCompatMatrix: clients predating venues — the v1 sequential
// protocol and a plain v2 client — keep working against the venue-aware
// server, transparently addressing the default venue.
func TestOldClientCompatMatrix(t *testing.T) {
	ms, kps, intr := syntheticCorpus(7, 160, 500, 200)

	clients := map[string]func(t *testing.T, s *Server) *Client{
		"v1": func(t *testing.T, s *Server) *Client {
			clientEnd, serverEnd := net.Pipe()
			go s.ServeConn(serverEnd)
			c := NewClientV1(clientEnd)
			t.Cleanup(func() { c.Close() })
			return c
		},
		"v2": func(t *testing.T, s *Server) *Client {
			c, err := Dial(s.Addr().String(), WithLogger(nil))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			return c
		},
	}
	for name, mk := range clients {
		t.Run(name, func(t *testing.T) {
			s := startVenueServer(t)
			c := mk(t, s)
			ctx := context.Background()
			total, err := c.Ingest(ctx, ms)
			if err != nil {
				t.Fatalf("Ingest: %v", err)
			}
			if total != len(ms) {
				t.Fatalf("Ingest total = %d, want %d", total, len(ms))
			}
			if n, err := c.Stats(ctx); err != nil || int(n) != len(ms) {
				t.Fatalf("Stats = %d, %v", n, err)
			}
			if res, err := c.Query(ctx, kps, intr); err != nil || res.Matched == 0 {
				t.Fatalf("Query: matched=%d err=%v", res.Matched, err)
			}
			if o, _, err := c.FetchOracle(ctx); err != nil || o.Inserts() == 0 {
				t.Fatalf("FetchOracle: %v", err)
			}
			// The pre-venue ingests all landed on the default venue.
			if n := s.db.Len(); n == 0 {
				t.Fatal("default venue empty after legacy ingest")
			}
		})
	}
}

// TestVenueIsolationOverWire: the cross-venue isolation guarantee holds
// through the full network stack — a venue handle only sees its own data,
// and the typed ErrEmptyDatabase crosses the wire for foreign venues.
func TestVenueIsolationOverWire(t *testing.T) {
	s := startVenueServer(t)
	c, err := Dial(s.Addr().String(), WithLogger(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ms, kps, intr := syntheticCorpus(7, 160, 500, 200)
	ctx := context.Background()

	va := c.Venue("venue-a")
	vb := c.Venue("venue-b")
	total, err := va.Ingest(ctx, ms)
	if err != nil {
		t.Fatalf("venue-a ingest: %v", err)
	}
	if total != len(ms) {
		t.Fatalf("venue-a total = %d, want %d", total, len(ms))
	}
	if res, err := va.Query(ctx, kps, intr); err != nil || res.Matched == 0 {
		t.Fatalf("venue-a query: matched=%d err=%v", res.Matched, err)
	}
	if _, err := vb.Query(ctx, kps, intr); !errors.Is(err, ErrEmptyDatabase) {
		t.Fatalf("venue-b query: got %v, want ErrEmptyDatabase over the wire", err)
	}
	if _, err := c.Query(ctx, kps, intr); !errors.Is(err, ErrEmptyDatabase) {
		t.Fatalf("default venue query: got %v, want ErrEmptyDatabase", err)
	}
	if n, err := va.Stats(ctx); err != nil || int(n) != len(ms) {
		t.Fatalf("venue-a stats = %d, %v", n, err)
	}
	if n, err := c.Stats(ctx); err != nil || n != 0 {
		t.Fatalf("default venue stats = %d, %v (leak across venues?)", n, err)
	}
	st, err := va.StatsFull(ctx)
	if err != nil || st.Mappings != uint64(len(ms)) {
		t.Fatalf("venue-a StatsFull = %+v, %v", st, err)
	}
	if o, _, err := va.FetchOracle(ctx); err != nil || o.Inserts() == 0 {
		t.Fatalf("venue-a FetchOracle: %v", err)
	}
}
