package server

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"

	"visualprint/internal/core"
	"visualprint/internal/mathx"
	"visualprint/internal/pose"
	"visualprint/internal/scene"
	"visualprint/internal/sift"
	"visualprint/internal/wardrive"
)

func testVenue() *scene.World {
	return scene.Build(scene.VenueSpec{
		Name: "server-test", Width: 16, Depth: 10, Height: 3,
		Aisles: 0, PanelWidth: 2,
		UniqueFrac: 0.7, RepeatedFrac: 0.15,
		Seed: 11, TileSize: 0.5,
	})
}

// wardriveMappings returns drift-free observations of the venue as server
// mappings.
func wardriveMappings(t testing.TB, w *scene.World) []Mapping {
	t.Helper()
	cfg := wardrive.DefaultConfig()
	cfg.ImageW, cfg.ImageH = 200, 150
	cfg.StepMeters = 2.5
	cfg.RowSpacing = 4
	cfg.MaxKeypointsPerFrame = 250
	cfg.Drift = wardrive.DriftModel{} // drift-free for server tests
	cfg.CloudStride = 0
	snaps, err := wardrive.Walk(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ms []Mapping
	for _, o := range wardrive.Observations(snaps) {
		m := Mapping{Pos: o.Est}
		copy(m.Desc[:], o.Keypoint.Desc[:])
		ms = append(ms, m)
	}
	if len(ms) < 500 {
		t.Fatalf("only %d wardriven mappings", len(ms))
	}
	return ms
}

func startServer(t testing.TB) (*Server, *Database) {
	t.Helper()
	db, err := NewDatabase(DefaultDatabaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln, db)
	s.Log = nil
	t.Cleanup(func() { s.Close() })
	return s, db
}

func dialClient(t testing.TB, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestIngestAndStatsOverTCP(t *testing.T) {
	s, db := startServer(t)
	c := dialClient(t, s)
	ms := make([]Mapping, 10)
	for i := range ms {
		ms[i].Desc[0] = byte(i)
		ms[i].Pos = mathx.Vec3{X: float64(i)}
	}
	total, err := c.Ingest(context.Background(), ms)
	if err != nil {
		t.Fatal(err)
	}
	if total != 10 || db.Len() != 10 {
		t.Errorf("total=%d dbLen=%d", total, db.Len())
	}
	n, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("stats = %d", n)
	}
	if c.BytesSent() == 0 || c.BytesReceived() == 0 {
		t.Error("byte counters not advancing")
	}
}

func TestOracleDownloadAgrees(t *testing.T) {
	s, db := startServer(t)
	c := dialClient(t, s)
	ms := make([]Mapping, 50)
	for i := range ms {
		for j := range ms[i].Desc {
			ms[i].Desc[j] = byte((i*7 + j*13) % 256)
		}
	}
	if _, err := c.Ingest(context.Background(), ms); err != nil {
		t.Fatal(err)
	}
	oracle, size, err := c.FetchOracle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 {
		t.Error("blob size not reported")
	}
	// The downloaded oracle must agree with the server's on every inserted
	// descriptor.
	for i := range ms {
		want, _ := db.Oracle().Uniqueness(ms[i].Desc[:])
		got, err := oracle.Uniqueness(ms[i].Desc[:])
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("downloaded oracle disagrees on descriptor %d: %d vs %d", i, got, want)
		}
	}
}

func TestEndToEndLocalization(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end localization is slow")
	}
	w := testVenue()
	s, _ := startServer(t)
	c := dialClient(t, s)
	ms := wardriveMappings(t, w)
	// Ingest in batches, as the wardriving app streams them.
	for i := 0; i < len(ms); i += 500 {
		end := i + 500
		if end > len(ms) {
			end = len(ms)
		}
		if _, err := c.Ingest(context.Background(), ms[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	oracle, _, err := c.FetchOracle(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Client side: photograph a unique POI from a new viewpoint.
	pois := w.POIsOfKind(scene.POIUnique)
	if len(pois) == 0 {
		t.Fatal("no unique POIs")
	}
	good := 0
	var errs []float64
	for trial := 0; trial < 3 && trial < len(pois); trial++ {
		cam := scene.CameraFacing(w, pois[trial], 3.2, 0.25, -0.05, 200, 150)
		fr, err := scene.Render(w, cam)
		if err != nil {
			t.Fatal(err)
		}
		sc := sift.DefaultConfig()
		sc.ContrastThreshold = 0.02
		kps := sift.Detect(fr.Image, sc)
		if len(kps) < 20 {
			continue
		}
		sel, err := oracle.SelectUnique(kps, 60)
		if err != nil {
			t.Fatal(err)
		}
		intr := pose.Intrinsics{W: cam.W, H: cam.H, FovX: cam.FovX, FovY: cam.FovY()}
		res, err := c.Query(context.Background(), sel, intr)
		if err != nil {
			continue // some views may lack consensus
		}
		d := res.Position.Dist(cam.Pos)
		errs = append(errs, d)
		if d < 3 {
			good++
		}
	}
	if good == 0 {
		t.Fatalf("no trial localized within 3 m; errors: %v", errs)
	}
}

func TestQueryOnEmptyDatabase(t *testing.T) {
	s, _ := startServer(t)
	c := dialClient(t, s)
	kps := make([]sift.Keypoint, 5)
	_, err := c.Query(context.Background(), kps, pose.Intrinsics{W: 100, H: 100, FovX: 1, FovY: 1})
	if err == nil {
		t.Fatal("empty database query succeeded")
	}
	if !IsRemote(err) {
		t.Errorf("want remote error, got %v", err)
	}
	if !errors.Is(err, ErrEmptyDatabase) {
		t.Errorf("want ErrEmptyDatabase over the wire, got %v", err)
	}
	if !strings.Contains(err.Error(), "empty") {
		t.Errorf("unexpected error: %v", err)
	}
	// The connection survives a remote error: next request works.
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatalf("connection dead after remote error: %v", err)
	}
}

func TestServeConnOverPipe(t *testing.T) {
	db, err := NewDatabase(DefaultDatabaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := &Server{db: db, conns: map[net.Conn]struct{}{}}
	clientEnd, serverEnd := net.Pipe()
	go s.ServeConn(serverEnd)
	c := NewClient(clientEnd)
	defer c.Close()
	if _, err := c.Ingest(context.Background(), []Mapping{{}}); err != nil {
		t.Fatal(err)
	}
	n, err := c.Stats(context.Background())
	if err != nil || n != 1 {
		t.Fatalf("stats = %d, err = %v", n, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	s, db := startServer(t)
	const clients = 4
	const batches = 5
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			cl, err := Dial(s.Addr().String())
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			for b := 0; b < batches; b++ {
				ms := make([]Mapping, 20)
				for i := range ms {
					ms[i].Desc[0] = byte(c)
					ms[i].Desc[1] = byte(b)
					ms[i].Desc[2] = byte(i)
				}
				if _, err := cl.Ingest(context.Background(), ms); err != nil {
					errc <- err
					return
				}
				if _, err := cl.Stats(context.Background()); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if got := db.Len(); got != clients*batches*20 {
		t.Errorf("db has %d mappings, want %d", got, clients*batches*20)
	}
}

func TestFrameRejectsOversized(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	defer clientEnd.Close()
	defer serverEnd.Close()
	go func() {
		// Handcrafted frame with an absurd length prefix.
		clientEnd.Write([]byte{0xff, 0xff, 0xff, 0xff})
	}()
	if _, _, err := readFrame(serverEnd); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestMappingWireRoundTrip(t *testing.T) {
	ms := make([]Mapping, 3)
	for i := range ms {
		for j := range ms[i].Desc {
			ms[i].Desc[j] = byte(i*50 + j)
		}
		ms[i].Pos = mathx.Vec3{X: float64(i) + 0.5, Y: 1.25, Z: -float64(i)}
	}
	back, err := decodeMappings(encodeMappings(ms))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ms {
		if back[i] != ms[i] {
			t.Fatalf("mapping %d corrupted", i)
		}
	}
	if _, err := decodeMappings([]byte{1, 2}); err == nil {
		t.Error("short payload accepted")
	}
}

func TestLocateResultRoundTrip(t *testing.T) {
	r := LocateResult{
		Position: mathx.Vec3{X: 1.5, Y: 2.5, Z: -3},
		Yaw:      0.7,
		Residual: 0.01,
		Matched:  42,
	}
	back, err := decodeLocateResult(encodeLocateResult(r))
	if err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Fatalf("round trip: %+v != %+v", back, r)
	}
	if _, err := decodeLocateResult([]byte{1}); err == nil {
		t.Error("short result accepted")
	}
}

func TestQueryUploadBytesMatchesWire(t *testing.T) {
	kps := make([]sift.Keypoint, 200)
	s, _ := startServer(t)
	c := dialClient(t, s)
	before := c.BytesSent()
	c.Query(context.Background(), kps, pose.Intrinsics{W: 100, H: 100, FovX: 1, FovY: 1}) // error ignored: empty DB
	sent := c.BytesSent() - before
	if sent != QueryUploadBytes(200) {
		t.Errorf("measured %d bytes, model %d", sent, QueryUploadBytes(200))
	}
}

func TestRefreshOracleIncremental(t *testing.T) {
	s, _ := startServer(t)
	c := dialClient(t, s)
	mk := func(n, base int) []Mapping {
		ms := make([]Mapping, n)
		for i := range ms {
			for j := range ms[i].Desc {
				ms[i].Desc[j] = byte((base + i*7 + j*13) % 256)
			}
		}
		return ms
	}
	if _, err := c.Ingest(context.Background(), mk(200, 0)); err != nil {
		t.Fatal(err)
	}
	oracle, fullSize, err := c.FetchOracle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Server ingests more; client refreshes incrementally.
	extra := mk(30, 9999)
	if _, err := c.Ingest(context.Background(), extra); err != nil {
		t.Fatal(err)
	}
	updated, diffSize, incremental, err := c.RefreshOracle(context.Background(), oracle)
	if err != nil {
		t.Fatal(err)
	}
	if !incremental {
		t.Fatal("expected an incremental refresh")
	}
	if diffSize >= fullSize {
		t.Errorf("diff %d B not below full blob %d B", diffSize, fullSize)
	}
	// The patched oracle must see the new descriptors.
	hits := 0
	for i := range extra {
		u, err := updated.Uniqueness(extra[i].Desc[:])
		if err != nil {
			t.Fatal(err)
		}
		if u > 0 {
			hits++
		}
	}
	if hits < len(extra)*8/10 {
		t.Errorf("patched oracle sees only %d/%d new descriptors", hits, len(extra))
	}
}

func TestRefreshOracleFallsBackToFull(t *testing.T) {
	s, _ := startServer(t)
	c := dialClient(t, s)
	ms := make([]Mapping, 50)
	for i := range ms {
		ms[i].Desc[0] = byte(i)
	}
	if _, err := c.Ingest(context.Background(), ms); err != nil {
		t.Fatal(err)
	}
	// A client whose version the server never snapshotted gets a full blob.
	stale, err := core.New(core.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	stale.Insert(make([]byte, 128))
	updated, _, incremental, err := c.RefreshOracle(context.Background(), stale)
	if err != nil {
		t.Fatal(err)
	}
	if incremental {
		t.Error("expected a full refresh for an unknown version")
	}
	if updated.Inserts() != 50 {
		t.Errorf("refreshed oracle has %d inserts, want 50", updated.Inserts())
	}
}

// TestStatsWireCompat pins the stats wire contract: msgStats keeps its
// original 8-byte count-only response (deployed clients reject anything
// else), while the extended report travels under msgStatsFull.
func TestStatsWireCompat(t *testing.T) {
	s, db := startServer(t)
	ms := make([]Mapping, 7)
	for i := range ms {
		ms[i].Desc[0] = byte(i)
		ms[i].Pos = mathx.Vec3{X: float64(i)}
	}
	if err := db.Ingest(context.Background(), ms); err != nil {
		t.Fatal(err)
	}
	rt, resp := s.serveRequest(context.Background(), msgStats, nil, nil)
	if rt != msgStatsResult {
		t.Fatalf("msgStats response type = %d", rt)
	}
	if len(resp) != 8 {
		t.Fatalf("msgStats payload is %d bytes, legacy clients require exactly 8", len(resp))
	}
	if got := binary.LittleEndian.Uint64(resp); got != 7 {
		t.Fatalf("msgStats count = %d, want 7", got)
	}
	rt, resp = s.serveRequest(context.Background(), msgStatsFull, nil, nil)
	if rt != msgStatsResult {
		t.Fatalf("msgStatsFull response type = %d", rt)
	}
	full, err := decodeDBStats(resp)
	if err != nil {
		t.Fatal(err)
	}
	if full.Mappings != 7 || full.DatabaseBytes == 0 {
		t.Fatalf("msgStatsFull decoded %+v", full)
	}
}

// TestStatsFullLegacyServerFallback drives StatsFull against a simulated
// old server that rejects msgStatsFull as an unknown message type: the
// client must fall back to the count-only RPC instead of failing.
func TestStatsFullLegacyServerFallback(t *testing.T) {
	cc, sc := net.Pipe()
	defer sc.Close()
	go func() {
		var pre [preambleSize]byte
		if _, err := io.ReadFull(sc, pre[:]); err != nil {
			return
		}
		for {
			id, typ, _, err := readFrameV2(sc)
			if err != nil {
				return
			}
			switch typ {
			case msgStats:
				ack := make([]byte, 8)
				binary.LittleEndian.PutUint64(ack, 42)
				writeFrameV2(sc, id, msgStatsResult, ack)
			default: // an old server knows no other stats message
				writeFrameV2(sc, id, msgError, encodeErrorPayload(
					errors.New("unknown message type")))
			}
		}
	}()
	c := NewClient(cc)
	defer c.Close()
	st, err := c.StatsFull(context.Background())
	if err != nil {
		t.Fatalf("StatsFull against legacy server: %v", err)
	}
	if st.Mappings != 42 {
		t.Fatalf("Mappings = %d, want 42", st.Mappings)
	}
	if st.Persistent || st.WALBytes != 0 {
		t.Fatalf("legacy fallback invented persistence state: %+v", st)
	}
}
