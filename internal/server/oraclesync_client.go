package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"visualprint/internal/codec"
	"visualprint/internal/core"
	"visualprint/internal/odelta"
)

// Client side of versioned oracle distribution: the OracleSync handle is
// the one API for keeping a device's uniqueness oracle current. It
// replaces the FetchOracle/RefreshOracle pair (now deprecated wrappers):
// one Sync call fetches or refreshes as needed — answered by the server
// with nothing, a compressed cell-delta chain, or a full blob, whichever
// is cheapest for the version the handle holds — and Watch turns the same
// handle push-driven, resyncing on the server's epoch-bump notifications
// instead of polling. Against servers predating the versioned protocol
// every path falls back to the legacy wire requests, probed once per
// connection generation (see capability).

// noVersion is the impossible version identity a handle without an oracle
// cites: it matches no server epoch and no delta-ring entry, so the server
// always answers with a full blob.
const noVersion = ^uint64(0)

// ErrWatchUnsupported marks a Watch call that cannot be served: the server
// predates oracle subscriptions, or the connection speaks protocol v1
// (whose ID-less framing cannot route server-initiated events). Sync still
// works against such servers — poll it instead. Match with errors.Is.
var ErrWatchUnsupported = errors.New("visualprint client: server does not support oracle subscriptions")

// OracleSync is the oracle-distribution handle: it owns one downloaded
// uniqueness oracle plus its version identity (epoch, inserts) and keeps
// them current against the server. Build one with Client.OracleSync or
// Venue.OracleSync; methods are safe for concurrent use, sharing the
// client's single connection.
type OracleSync struct {
	c     *Client
	venue string

	// mu guards the held oracle and its version, and serializes Sync calls
	// (two concurrent syncs patching one oracle would corrupt it).
	mu      sync.Mutex
	oracle  *core.Oracle
	epoch   uint64
	inserts uint64
	// versioned marks the held version identity trustworthy: the last sync
	// was answered by a version-stamping server. Cleared by the legacy
	// fallback, whose responses carry no epoch.
	versioned bool
	bytes     int64
}

// OracleSync returns the oracle-distribution handle for the client's
// default venue (or its WithVenue pin). The handle starts empty; the first
// Sync downloads the full oracle and later Syncs ride the server's delta
// window. Create one handle per oracle consumer and keep it — the version
// identity it accumulates is what makes refreshes cheap.
func (c *Client) OracleSync() *OracleSync { return &OracleSync{c: c, venue: c.venue} }

// Oracle returns the held oracle (nil before the first successful Sync).
// The handle retains ownership: the same instance is patched in place by
// delta syncs, so callers needing a frozen copy must Clone it.
func (h *OracleSync) Oracle() *core.Oracle {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.oracle
}

// Version returns the held oracle's version identity. ok is false until a
// versioned sync has completed — before the first Sync, and against legacy
// servers whose responses carry no epoch.
func (h *OracleSync) Version() (epoch, inserts uint64, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.epoch, h.inserts, h.versioned
}

// TransferBytes returns the cumulative response payload bytes this handle
// has downloaded across all syncs — the numerator of the
// bytes-per-client-per-update accounting.
func (h *OracleSync) TransferBytes() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bytes
}

// Sync brings the held oracle up to the server's latest epoch and returns
// it. The first call downloads the full oracle; later calls cite the held
// version and receive the cheapest sufficient transfer — an unchanged ack,
// a compressed cell-delta chain, or (past the server's delta window) a
// fresh full blob. Against a server predating versioned syncs the call
// transparently uses the legacy fetch/refresh requests, probed once per
// connection generation.
func (h *OracleSync) Sync(ctx context.Context) (*core.Oracle, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.syncLocked(ctx, false)
}

func (h *OracleSync) syncLocked(ctx context.Context, retried bool) (*core.Oracle, error) {
	if ok, known := h.c.capability(capOracleSync); h.c.v1 || (known && !ok) {
		return h.legacySyncLocked(ctx)
	}
	haveEpoch, haveInserts := noVersion, noVersion
	if h.oracle != nil && h.versioned {
		haveEpoch, haveInserts = h.epoch, h.inserts
	}
	rt, resp, err := h.c.readInvoke(ctx, h.venue, msgOracleSync, encodeOracleVersion(haveEpoch, haveInserts))
	if err != nil {
		if isUnknownTypeErr(err, msgOracleSync) {
			h.c.recordCapability(capOracleSync, false)
			h.c.logf("visualprint client: server predates versioned oracle sync")
			return h.legacySyncLocked(ctx)
		}
		return nil, err
	}
	h.c.recordCapability(capOracleSync, true)
	h.bytes += int64(len(resp))
	switch rt {
	case msgOracleSyncNone:
		epoch, inserts, err := decodeOracleVersion(resp)
		if err != nil || h.oracle == nil || epoch != haveEpoch || inserts != haveInserts {
			return nil, errRemote{msg: "bad oracle sync ack"}
		}
		return h.oracle, nil
	case msgOracleSyncDelta:
		recs, err := odelta.DecodeChain(resp)
		if err != nil {
			return nil, err
		}
		if len(recs) == 0 {
			return nil, errRemote{msg: "empty oracle delta chain"}
		}
		o, err := odelta.ApplyChain(h.oracle, recs)
		if err != nil {
			// The chain does not fit the held oracle (e.g. a different
			// server history answered after a failover). One forced full
			// sync repairs it; a second mismatch is a real protocol error.
			if retried {
				return nil, err
			}
			h.oracle, h.versioned = nil, false
			return h.syncLocked(ctx, true)
		}
		last := recs[len(recs)-1]
		h.oracle, h.epoch, h.inserts, h.versioned = o, last.ToEpoch, last.ToInserts, true
		return o, nil
	case msgOracleSyncFull:
		epoch, blob, err := decodeOracleSyncFull(resp)
		if err != nil {
			return nil, err
		}
		raw, err := codec.Gunzip(blob)
		if err != nil {
			return nil, err
		}
		o, err := core.Read(bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		h.oracle, h.epoch, h.inserts, h.versioned = o, epoch, o.Inserts(), true
		return o, nil
	default:
		return nil, errRemote{msg: "unexpected response type"}
	}
}

// legacySyncLocked serves Sync against a server predating the versioned
// protocol: a full fetch when the handle is empty, the diff-or-blob
// refresh ladder otherwise — byte-for-byte the requests an old client
// binary sends. Legacy responses carry no epoch, so the handle's version
// identity goes untracked until a versioned server answers again.
func (h *OracleSync) legacySyncLocked(ctx context.Context) (*core.Oracle, error) {
	h.versioned = false
	if h.oracle == nil {
		o, n, err := h.c.fetchOracle(ctx, h.venue)
		if err != nil {
			return nil, err
		}
		h.oracle, h.bytes = o, h.bytes+n
		return o, nil
	}
	o, n, _, err := h.c.refreshOracle(ctx, h.venue, h.oracle)
	if err != nil {
		return nil, err
	}
	h.oracle, h.bytes = o, h.bytes+n
	return o, nil
}

// OracleUpdate is one push-driven refresh delivered by Watch: the handle's
// oracle after syncing to the pushed epoch. A non-nil Err is the watch's
// terminal failure; the channel closes after delivering it.
type OracleUpdate struct {
	Oracle  *core.Oracle
	Epoch   uint64
	Inserts uint64
	Err     error
}

// Watch subscribes the handle to the server's epoch-bump notifications and
// returns a channel of updates: whenever the server's oracle advances past
// the held version, the handle syncs (delta where possible) and delivers
// the result. The server pushes the current version immediately on
// subscribing, so a stale handle updates without waiting for the next
// ingest. Bursts coalesce — a slow consumer sees the latest version, not
// every intermediate one. The subscription survives connection loss by
// resubscribing after reconnect; it ends when ctx is canceled (the channel
// closes) or on a terminal failure (delivered as OracleUpdate.Err, then
// closed). Requires protocol v2 and a subscription-capable server: callers
// against older deployments get the typed ErrWatchUnsupported here and
// should poll Sync instead.
func (h *OracleSync) Watch(ctx context.Context) (<-chan OracleUpdate, error) {
	if h.c.v1 {
		return nil, ErrWatchUnsupported
	}
	if ok, known := h.c.capability(capOracleSync); known && !ok {
		return nil, ErrWatchUnsupported
	}
	epoch, _, _ := h.Version()
	id, ch, err := h.c.subscribe(ctx, h.venue, epoch)
	if err != nil {
		return nil, err
	}
	// The server acks a subscription by pushing the current version
	// immediately, and an old server rejects the unknown type just as
	// fast — wait for that first frame here so unsupported servers fail
	// synchronously with a typed error instead of inside the stream.
	var first rpcResult
	select {
	case <-ctx.Done():
		h.c.unsubscribe(id)
		h.c.sendCancel(id)
		return nil, ctx.Err()
	case first = <-ch:
	}
	switch {
	case first.err != nil:
		h.c.unsubscribe(id)
		return nil, first.err
	case first.typ == msgError:
		h.c.unsubscribe(id)
		err := decodeErrorPayload(first.payload)
		if isUnknownTypeErr(err, msgSubscribeOracle) {
			h.c.recordCapability(capOracleSync, false)
			return nil, fmt.Errorf("%w: %w", ErrWatchUnsupported, err)
		}
		if isUnknownTypeErr(err, msgVenueEx) {
			return nil, fmt.Errorf("%w: %w", ErrVenueUnsupported, err)
		}
		return nil, err
	case first.typ != msgOracleEpoch:
		h.c.unsubscribe(id)
		return nil, errRemote{msg: "unexpected response type"}
	}
	h.c.recordCapability(capOracleSync, true)
	out := make(chan OracleUpdate, 1)
	go h.watchLoop(ctx, id, ch, first, out)
	return out, nil
}

// watchLoop is Watch's stream driver: one epoch event in, one synced
// update out, resubscribing across connection loss. first is the
// subscription ack Watch already consumed.
func (h *OracleSync) watchLoop(ctx context.Context, id uint32, ch chan rpcResult, first rpcResult, out chan<- OracleUpdate) {
	defer close(out)
	fail := func(err error) {
		select {
		case out <- OracleUpdate{Err: err}:
		case <-ctx.Done():
		}
	}
	r := first
	for {
		switch {
		case r.err != nil:
			// Transport death. The version identity survives in the handle,
			// so the catch-up sync after resubscribing is usually a small
			// delta chain covering the missed epochs.
			nid, nch, err := h.resubscribe(ctx)
			if err != nil {
				if ctx.Err() == nil {
					fail(err)
				}
				return
			}
			id, ch = nid, nch
		case r.typ == msgError:
			if err := decodeErrorPayload(r.payload); ctx.Err() == nil {
				fail(err)
			}
			return
		case r.typ == msgOracleEpoch:
			epoch, inserts, err := decodeOracleVersion(r.payload)
			if err != nil {
				fail(errRemote{msg: "bad epoch event"})
				return
			}
			he, hi, ok := h.Version()
			if !ok || he != epoch || hi != inserts {
				o, err := h.Sync(ctx)
				if err != nil {
					if ctx.Err() == nil {
						fail(err)
					}
					return
				}
				// Deliver a snapshot: the handle patches its held oracle in
				// place on the next delta sync, which must not race with a
				// consumer still reading this update.
				snap, err := o.Clone()
				if err != nil {
					fail(err)
					return
				}
				e2, i2, _ := h.Version()
				select {
				case out <- OracleUpdate{Oracle: snap, Epoch: e2, Inserts: i2}:
				case <-ctx.Done():
					h.c.unsubscribe(id)
					h.c.sendCancel(id)
					return
				}
			}
		default:
			fail(errRemote{msg: "unexpected response type"})
			return
		}
		select {
		case <-ctx.Done():
			h.c.unsubscribe(id)
			h.c.sendCancel(id)
			return
		case r = <-ch:
		}
	}
}

// resubscribe re-establishes a watch stream after connection loss:
// reconnect, subscribe, jittered-free exponential backoff between
// attempts. Transport errors retry (the server may be restarting); any
// other failure — including a resubscription answered by a server binary
// without subscription support — is terminal for the watch.
func (h *OracleSync) resubscribe(ctx context.Context) (uint32, chan rpcResult, error) {
	delay := 50 * time.Millisecond
	for {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		rerr := h.c.reconnect(ctx)
		if rerr == nil {
			epoch, _, _ := h.Version()
			id, ch, err := h.c.subscribe(ctx, h.venue, epoch)
			if err == nil {
				return id, ch, nil
			}
			if !errors.Is(err, ErrConnectionLost) {
				return 0, nil, err
			}
		} else if h.c.dialFn == nil {
			// No dialer: the connection cannot come back.
			return 0, nil, rerr
		}
		select {
		case <-time.After(delay):
			delay *= 2
			if delay > 2*time.Second {
				delay = 2 * time.Second
			}
		case <-ctx.Done():
			return 0, nil, ctx.Err()
		}
	}
}

// subscribe registers an oracle-epoch subscription stream on the v2
// connection: one msgSubscribeOracle frame (venue-wrapped when pinned)
// whose request ID stays live in subs — not pending — so every pushed
// msgOracleEpoch event keeps routing to the returned mailbox until
// unsubscribe. The mailbox is latest-wins (see deliverLatest).
func (c *Client) subscribe(ctx context.Context, venue string, haveEpoch uint64) (uint32, chan rpcResult, error) {
	if c.v1 {
		return 0, nil, ErrWatchUnsupported
	}
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	payload := make([]byte, 8)
	binary.LittleEndian.PutUint64(payload, haveEpoch)
	typ := byte(msgSubscribeOracle)
	if venue != "" {
		if c.venueNo.Load() {
			return 0, nil, ErrVenueUnsupported
		}
		if !validVenueName(venue) {
			return 0, nil, fmt.Errorf("visualprint client: invalid venue name %q", venue)
		}
		typ, payload = msgVenueEx, wrapVenue(venue, msgSubscribeOracle, payload)
	}
	ch := make(chan rpcResult, 1)
	c.writeMu.Lock()
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		c.writeMu.Unlock()
		return 0, nil, err
	}
	conn := c.conn
	c.lastID++
	id := c.lastID
	c.subs[id] = ch
	c.mu.Unlock()
	// Only the frame write is deadline-bounded; the stream itself is
	// long-lived and carries no deadline envelope.
	if d, ok := ctx.Deadline(); ok {
		conn.SetWriteDeadline(d)
	} else {
		conn.SetWriteDeadline(time.Time{})
	}
	err := writeFrameV2(conn, id, typ, payload)
	if err == nil {
		c.sent.Add(int64(len(payload)) + frameOverheadV2)
	}
	c.writeMu.Unlock()
	if err != nil {
		c.unsubscribe(id)
		if cerr := ctx.Err(); cerr != nil {
			return 0, nil, cerr
		}
		return 0, nil, fmt.Errorf("%w: %w", ErrConnectionLost, err)
	}
	return id, ch, nil
}

// unsubscribe retires a subscription stream's demux route; late frames for
// the ID are dropped.
func (c *Client) unsubscribe(id uint32) {
	c.mu.Lock()
	delete(c.subs, id)
	c.mu.Unlock()
}
