package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"visualprint/internal/obs"
	"visualprint/internal/store"
)

// Replication control block. A fleet is one primary streaming its WAL to N
// replicas; every member carries a ReplState that pins down what the node
// is right now (role, epoch, who the primary is) and what it has (the
// applied offset — the length of the WAL prefix in its database). The
// protocol is pull-based: replicas long-poll the primary with msgReplFetch,
// and the fromSeq they ask for doubles as their acknowledgement — asking
// for record k tells the primary records [0,k) are durably applied over
// there. That one message is the whole offset/ack protocol; there is no
// separate ack channel to keep consistent.
//
// The ReplState lives in internal/server (not internal/repl) because the
// wire handlers, the ingest hook, and the read/write gates all need it and
// the repl package imports this one; the fleet runners (repl.Node,
// repl.Sentinel) drive it from outside through exported methods.

// Role is a fleet member's current disposition.
type Role uint8

const (
	// RolePrimary accepts ingests, streams its WAL to replicas, and is the
	// redirect target every other member advertises.
	RolePrimary Role = iota
	// RoleReplica applies the primary's WAL and serves reads while within
	// its staleness bound; ingests are rejected with a redirect.
	RoleReplica
	// RoleCandidate is a replica mid-full-sync: its state is being replaced
	// wholesale, so even reads redirect until the transfer lands.
	RoleCandidate
)

func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleReplica:
		return "replica"
	case RoleCandidate:
		return "candidate"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Replication protocol limits and defaults.
const (
	// replBatchMaxBytes caps one msgReplBatch response so a fresh replica
	// tailing a deep backlog doesn't build gigabyte frames.
	replBatchMaxBytes = 4 << 20
	// replFetchMaxWait caps the server-side long-poll; a replica asking for
	// more still gets its response, just sooner. Bounded so a fetch never
	// pins an admission slot for long.
	replFetchMaxWait = time.Second
	// DefaultSyncTimeout bounds how long a primary ingest waits for the
	// configured minimum of replica acknowledgements before giving up.
	DefaultSyncTimeout = 5 * time.Second
	// DefaultMaxStaleness is how far behind the last successful primary
	// contact a replica may be while still serving reads itself.
	DefaultMaxStaleness = 3 * time.Second
)

// ErrReplSyncTimeout: a primary ingest was durably logged and applied
// locally, but the configured minimum of replicas did not acknowledge it in
// time. Deliberately NOT retryable — the batch may replicate late, and a
// blind resend would duplicate it; the caller must reconcile (or simply
// re-read) before retrying.
var ErrReplSyncTimeout = errors.New("server: replication sync timeout (ingest durable locally, not yet acknowledged by replicas)")

// ReplConfig seeds a ReplState.
type ReplConfig struct {
	// Self is the address this node advertises to the fleet (redirects,
	// fetch identity). Required.
	Self string
	// Primary, when non-empty, starts the node as a replica of that
	// address; empty starts it as the primary.
	Primary string
	// MinSyncReplicas > 0 makes primary ingests semi-synchronous: the ack
	// is withheld until that many replicas have durably applied the batch.
	// 0 acknowledges on local durability alone.
	MinSyncReplicas int
	// SyncTimeout bounds the semi-sync wait (default DefaultSyncTimeout).
	SyncTimeout time.Duration
	// MaxStaleness bounds replica-served reads (default
	// DefaultMaxStaleness): a replica that hasn't heard from the primary
	// for longer redirects queries instead of serving them.
	MaxStaleness time.Duration
}

// ReplState is one fleet member's replication state machine. All methods
// are safe for concurrent use.
type ReplState struct {
	db *Database
	lg *obs.Logger

	minSync      int
	syncTimeout  time.Duration
	maxStaleness time.Duration
	self         string

	mu          sync.Mutex
	role        Role
	epoch       uint64
	primaryAddr string
	// lastContact is the replica's last successful exchange with the
	// primary (set by Touch from the fetch loop); the staleness bound
	// measures from here.
	lastContact time.Time
	// syncNeeded is set when the node is demoted from primary: its log may
	// have unacknowledged records the new primary's history lacks
	// (divergence), so the tail loop must full-sync instead of resuming at
	// its local offset. Cleared by EndSync.
	syncNeeded bool
	// acks maps replica id -> applied offset, learned from fetch requests.
	acks map[string]uint64
	// readers caches one WAL reader per replica so a steady tail doesn't
	// rescan its segment every poll. Checkout pattern: a fetch removes the
	// entry while using it, so a duplicate fetch simply opens a fresh one.
	readers map[string]*store.WALReader
	// change is closed and renewed whenever role/epoch/primary move, so
	// in-process watchers (repl.Node) react without polling.
	change chan struct{}
	// appended is closed and renewed when the local store gains durable
	// records — the long-poll wakeup for fetches at the head.
	appended chan struct{}
	// acked is closed and renewed when acks advance — the semi-sync wakeup.
	acked chan struct{}

	// Metrics (nil until enableObs; all no-op before then).
	bytesStreamed *obs.Counter
	failovers     *obs.Counter
	lagRecords    *obs.Gauge
	lagNs         *obs.Gauge
	ackGauges     map[string]*obs.Gauge
	reg           *obs.Registry
}

// NewReplState builds the control block and binds it to db (whose ingest
// path then advances and gates on it). The database must be a durable shard
// engine by the time the node serves traffic; that is validated by the
// fleet runner, not here.
func NewReplState(db *Database, cfg ReplConfig) *ReplState {
	rs := &ReplState{
		db:           db,
		lg:           obs.Default(),
		minSync:      cfg.MinSyncReplicas,
		syncTimeout:  cfg.SyncTimeout,
		maxStaleness: cfg.MaxStaleness,
		self:         cfg.Self,
		role:         RolePrimary,
		primaryAddr:  cfg.Self,
		acks:         map[string]uint64{},
		readers:      map[string]*store.WALReader{},
		change:       make(chan struct{}),
		appended:     make(chan struct{}),
		acked:        make(chan struct{}),
		lastContact:  time.Now(),
	}
	if rs.syncTimeout <= 0 {
		rs.syncTimeout = DefaultSyncTimeout
	}
	if rs.maxStaleness <= 0 {
		rs.maxStaleness = DefaultMaxStaleness
	}
	if cfg.Primary != "" {
		rs.role = RoleReplica
		rs.primaryAddr = cfg.Primary
	}
	db.SetRepl(rs)
	return rs
}

// SetLogger routes the control block's warnings through l (nil silences).
func (rs *ReplState) SetLogger(l *obs.Logger) {
	if l == nil {
		l = obs.Discard
	}
	rs.mu.Lock()
	rs.lg = l
	rs.mu.Unlock()
}

// enableObs wires the replication instruments onto r. Called by Serve.
func (rs *ReplState) enableObs(r *obs.Registry) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.reg != nil {
		return
	}
	rs.reg = r
	rs.bytesStreamed = r.Counter("repl_bytes_streamed")
	rs.failovers = r.Counter("failovers_total")
	rs.lagRecords = r.Gauge("repl_lag_records")
	rs.lagNs = r.Gauge("repl_lag_ns")
	rs.ackGauges = map[string]*obs.Gauge{}
}

// Role returns the node's current role.
func (rs *ReplState) Role() Role {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.role
}

// Epoch returns the node's current configuration epoch.
func (rs *ReplState) Epoch() uint64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.epoch
}

// PrimaryAddr returns the primary's address as this node knows it (its own
// advertised address when it is the primary; possibly empty mid-failover).
func (rs *ReplState) PrimaryAddr() string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.primaryAddr
}

// Self returns the node's advertised address.
func (rs *ReplState) Self() string { return rs.self }

// Changed returns a channel closed on the next role/epoch/primary change.
func (rs *ReplState) Changed() <-chan struct{} {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.change
}

// Applied returns the node's applied offset: the number of WAL records in
// its database, the currency of the whole ack protocol.
func (rs *ReplState) Applied() uint64 { return rs.db.StoreSeq() }

// Staleness is how long ago the node last heard from the primary; zero on
// the primary itself.
func (rs *ReplState) Staleness() time.Duration {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.role == RolePrimary {
		return 0
	}
	return time.Since(rs.lastContact)
}

// Touch records a successful exchange with the primary (called by the
// replica's fetch loop, including for empty batches — liveness, not data,
// is what the staleness bound measures).
func (rs *ReplState) Touch() {
	rs.mu.Lock()
	rs.lastContact = time.Now()
	if rs.lagNs != nil {
		rs.lagNs.Set(0)
	}
	rs.mu.Unlock()
}

// BeginSync marks the node a candidate for the duration of a full-sync
// (reads redirect; the state is being replaced wholesale). EndSync returns
// it to replica duty.
func (rs *ReplState) BeginSync() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	// Pending until EndSync: if the transfer is interrupted (primary killed
	// mid-snapshot, install failure), the tail loop must restart the
	// full-sync rather than resume tailing a half-replaced database.
	rs.syncNeeded = true
	if rs.role == RoleReplica {
		rs.setRoleLocked(RoleCandidate, rs.epoch, rs.primaryAddr)
	}
}

// EndSync completes a full-sync; the node serves reads again.
func (rs *ReplState) EndSync() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.syncNeeded = false
	if rs.role == RoleCandidate {
		rs.lastContact = time.Now()
		rs.setRoleLocked(RoleReplica, rs.epoch, rs.primaryAddr)
	}
}

// FullSyncPending reports whether the node's log may have diverged from
// the fleet's history (it was demoted from primary) and must therefore
// restart from a snapshot transfer rather than tail from its local offset.
func (rs *ReplState) FullSyncPending() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.syncNeeded
}

// FollowHint redirects the node's tail loop to a new primary address
// without an epoch change — the self-healing path when a fetch bounces
// with a redirect. Epoch-changing reconfiguration goes through Follow.
func (rs *ReplState) FollowHint(addr string) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if addr == "" || addr == rs.primaryAddr || rs.role == RolePrimary {
		return
	}
	rs.setRoleLocked(rs.role, rs.epoch, addr)
}

// Follow demotes/reconfigures the node: at epoch e, the primary is addr.
// Rejected when e is older than the node's current epoch (a stale
// sentinel). Promotion of self goes through Promote.
func (rs *ReplState) Follow(epoch uint64, addr string) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if epoch < rs.epoch {
		return fmt.Errorf("server: stale replication epoch %d (current %d)", epoch, rs.epoch)
	}
	wasPrimary := rs.role == RolePrimary
	rs.lastContact = time.Now()
	rs.setRoleLocked(RoleReplica, epoch, addr)
	if wasPrimary {
		rs.closeReadersLocked()
		rs.acks = map[string]uint64{}
		// An ex-primary's log tail may hold records the new history lacks;
		// resuming the tail at the local offset would interleave two
		// histories. Force a snapshot restart.
		rs.syncNeeded = true
		rs.lg.Warnf("repl: demoted to replica of %s at epoch %d", addr, epoch)
	}
	return nil
}

// Promote makes the node the primary at epoch e. Rejected when e is older
// than the node's current epoch.
func (rs *ReplState) Promote(epoch uint64) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if epoch < rs.epoch {
		return fmt.Errorf("server: stale replication epoch %d (current %d)", epoch, rs.epoch)
	}
	promoted := rs.role != RolePrimary
	rs.setRoleLocked(RolePrimary, epoch, rs.self)
	if promoted {
		if rs.failovers != nil {
			rs.failovers.Inc()
		}
		rs.lg.Warnf("repl: promoted to primary at epoch %d (applied %d)", epoch, rs.db.StoreSeq())
	}
	return nil
}

// setRoleLocked applies a role/epoch/primary transition and wakes watchers.
// Callers hold rs.mu.
func (rs *ReplState) setRoleLocked(role Role, epoch uint64, primary string) {
	if role == rs.role && epoch == rs.epoch && primary == rs.primaryAddr {
		return
	}
	rs.role, rs.epoch, rs.primaryAddr = role, epoch, primary
	close(rs.change)
	rs.change = make(chan struct{})
}

// closeReadersLocked drops every cached replica reader. Callers hold rs.mu.
func (rs *ReplState) closeReadersLocked() {
	for id, r := range rs.readers {
		r.Close()
		delete(rs.readers, id)
	}
}

// Close releases the control block's file handles (cached WAL readers).
func (rs *ReplState) Close() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.closeReadersLocked()
}

// noteDurable wakes fetch long-polls after the local store gained durable
// records. Called by the ingest path after its commit fsync completes.
func (rs *ReplState) noteDurable() {
	rs.mu.Lock()
	close(rs.appended)
	rs.appended = make(chan struct{})
	rs.mu.Unlock()
}

// recordAck books a replica's applied offset (its fetch fromSeq) and wakes
// semi-sync waiters. Callers hold rs.mu.
func (rs *ReplState) recordAckLocked(id string, off uint64) {
	if cur, ok := rs.acks[id]; ok && cur >= off {
		return
	}
	rs.acks[id] = off
	close(rs.acked)
	rs.acked = make(chan struct{})
	if rs.reg != nil {
		g, ok := rs.ackGauges[id]
		if !ok {
			g = rs.reg.Gauge("repl_ack_offset_" + metricSafe(id))
			rs.ackGauges[id] = g
		}
		g.Set(int64(off))
	}
}

// metricSafe rewrites an address into a metric-name suffix.
func metricSafe(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, id)
}

// syncedLocked counts replicas whose acknowledged offset covers target.
// Callers hold rs.mu.
func (rs *ReplState) syncedLocked(target uint64) int {
	n := 0
	for _, off := range rs.acks {
		if off >= target {
			n++
		}
	}
	return n
}

// waitSynced blocks a primary ingest until MinSyncReplicas replicas have
// acknowledged offset target, or the sync timeout passes (returning the
// non-retryable ErrReplSyncTimeout). No-op on replicas and on fleets
// configured fully asynchronous.
func (rs *ReplState) waitSynced(target uint64) error {
	rs.mu.Lock()
	if rs.minSync <= 0 || rs.role != RolePrimary {
		rs.mu.Unlock()
		return nil
	}
	deadline := time.Now().Add(rs.syncTimeout)
	for rs.syncedLocked(target) < rs.minSync {
		ch := rs.acked
		rs.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return ErrReplSyncTimeout
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
		case <-t.C:
		}
		t.Stop()
		rs.mu.Lock()
		if rs.role != RolePrimary {
			// Demoted mid-wait: the batch's fate now belongs to the new
			// primary's history. Don't acknowledge.
			primary := rs.primaryAddr
			rs.mu.Unlock()
			return &NotPrimaryError{Primary: primary}
		}
	}
	rs.mu.Unlock()
	return nil
}

// ---- wire handlers -------------------------------------------------------

// handleState answers msgReplState:
// [u8 role][u64 epoch][u64 applied][u64 staleness ms][primary addr].
func (rs *ReplState) handleState() (byte, []byte) {
	applied := rs.db.StoreSeq()
	rs.mu.Lock()
	role, epoch, primary := rs.role, rs.epoch, rs.primaryAddr
	var staleMs uint64
	if role != RolePrimary {
		staleMs = uint64(time.Since(rs.lastContact) / time.Millisecond)
	}
	rs.mu.Unlock()
	buf := make([]byte, 1+8+8+8+len(primary))
	buf[0] = byte(role)
	binary.LittleEndian.PutUint64(buf[1:], epoch)
	binary.LittleEndian.PutUint64(buf[9:], applied)
	binary.LittleEndian.PutUint64(buf[17:], staleMs)
	copy(buf[25:], primary)
	return msgReplStateResult, buf
}

// handleSnapshot answers msgReplSnapshot with [u64 seq][db-state blob] —
// the full-sync transfer for a fresh replica. Primary only.
func (rs *ReplState) handleSnapshot() (byte, []byte) {
	if rs.Role() != RolePrimary {
		return errorResponse(&NotPrimaryError{Primary: rs.PrimaryAddr()})
	}
	seq, blob, err := rs.db.SnapshotBlob()
	if err != nil {
		return errorResponse(err)
	}
	buf := make([]byte, 8+len(blob))
	binary.LittleEndian.PutUint64(buf, seq)
	copy(buf[8:], blob)
	return msgReplSnapshotResult, buf
}

// handleFetch answers msgReplFetch — the pull/ack message:
// [u64 fromSeq][u32 max][u32 waitMs][replica id]. The fromSeq is the
// replica's acknowledged offset; the response is a msgReplBatch of up to
// max records starting there, long-polling up to waitMs (capped) when the
// replica is already at the head.
func (rs *ReplState) handleFetch(ctx context.Context, payload []byte) (byte, []byte) {
	if len(payload) < 16 {
		return errorResponse(errors.New("bad repl fetch request"))
	}
	from := binary.LittleEndian.Uint64(payload)
	max := int(binary.LittleEndian.Uint32(payload[8:]))
	wait := time.Duration(binary.LittleEndian.Uint32(payload[12:])) * time.Millisecond
	id := string(payload[16:])
	if max <= 0 {
		max = 1
	}
	if wait > replFetchMaxWait {
		wait = replFetchMaxWait
	}

	rs.mu.Lock()
	if rs.role != RolePrimary {
		primary := rs.primaryAddr
		rs.mu.Unlock()
		return errorResponse(&NotPrimaryError{Primary: primary})
	}
	if id != "" {
		rs.recordAckLocked(id, from)
	}
	if rs.lagRecords != nil {
		head := rs.db.StoreSeq()
		var minAck uint64 = head
		for _, off := range rs.acks {
			if off < minAck {
				minAck = off
			}
		}
		rs.lagRecords.Set(int64(head - minAck))
	}
	// Check out this replica's cached reader (if its position matches).
	r := rs.readers[id]
	delete(rs.readers, id)
	appended := rs.appended
	rs.mu.Unlock()

	if r != nil && r.Pos() != from {
		r.Close()
		r = nil
	}
	if r == nil {
		var err error
		r, err = rs.db.OpenWALReader(from)
		if err != nil {
			return errorResponse(err)
		}
	}

	records, err := readBatch(r, max)
	if err != nil {
		r.Close()
		return errorResponse(err)
	}
	if len(records) == 0 && wait > 0 {
		// At the head: long-poll for new durable records, then try once
		// more. One round only — the replica re-polls anyway.
		t := time.NewTimer(wait)
		select {
		case <-appended:
		case <-t.C:
		case <-ctx.Done():
		}
		t.Stop()
		if ctx.Err() == nil {
			if records, err = readBatch(r, max); err != nil {
				r.Close()
				return errorResponse(err)
			}
		}
	}

	// Check the reader back in unless the node was demoted meanwhile (or a
	// concurrent fetch for the same id already parked one).
	rs.mu.Lock()
	if rs.role == RolePrimary && rs.readers[id] == nil && id != "" {
		rs.readers[id] = r
	} else {
		r.Close()
	}
	var streamed int
	for _, rec := range records {
		streamed += len(rec)
	}
	if rs.bytesStreamed != nil && streamed > 0 {
		rs.bytesStreamed.Add(uint64(streamed))
	}
	rs.mu.Unlock()

	return msgReplBatch, encodeReplBatch(from, rs.db.StoreSeq(), records)
}

// readBatch drains up to max records (bounded by replBatchMaxBytes) from r,
// treating the live-tail EOF as "no more for now".
func readBatch(r *store.WALReader, max int) ([][]byte, error) {
	var records [][]byte
	var total int
	for len(records) < max && total < replBatchMaxBytes {
		payload, _, err := r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return records, err
		}
		records = append(records, payload)
		total += len(payload)
	}
	return records, nil
}

// encodeReplBatch builds a msgReplBatch payload:
// [u64 firstSeq][u64 head][u32 n][n x (u32 len + record)].
func encodeReplBatch(firstSeq, head uint64, records [][]byte) []byte {
	size := 8 + 8 + 4
	for _, rec := range records {
		size += 4 + len(rec)
	}
	buf := make([]byte, size)
	binary.LittleEndian.PutUint64(buf, firstSeq)
	binary.LittleEndian.PutUint64(buf[8:], head)
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(records)))
	off := 20
	for _, rec := range records {
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(rec)))
		off += 4
		off += copy(buf[off:], rec)
	}
	return buf
}

// decodeReplBatch parses a msgReplBatch payload.
func decodeReplBatch(p []byte) (firstSeq, head uint64, records [][]byte, err error) {
	if len(p) < 20 {
		return 0, 0, nil, errors.New("short repl batch")
	}
	firstSeq = binary.LittleEndian.Uint64(p)
	head = binary.LittleEndian.Uint64(p[8:])
	n := binary.LittleEndian.Uint32(p[16:])
	off := 20
	records = make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		if off+4 > len(p) {
			return 0, 0, nil, errors.New("truncated repl batch")
		}
		ln := int(binary.LittleEndian.Uint32(p[off:]))
		off += 4
		if off+ln > len(p) {
			return 0, 0, nil, errors.New("truncated repl batch record")
		}
		records = append(records, p[off:off+ln])
		off += ln
	}
	return firstSeq, head, records, nil
}

// handleFollow answers msgReplFollow [u64 epoch][primary addr].
func (rs *ReplState) handleFollow(payload []byte) (byte, []byte) {
	if len(payload) < 8 {
		return errorResponse(errors.New("bad repl follow request"))
	}
	epoch := binary.LittleEndian.Uint64(payload)
	addr := string(payload[8:])
	if err := rs.Follow(epoch, addr); err != nil {
		return errorResponse(err)
	}
	return msgReplAck, nil
}

// handlePromote answers msgReplPromote [u64 epoch].
func (rs *ReplState) handlePromote(payload []byte) (byte, []byte) {
	if len(payload) != 8 {
		return errorResponse(errors.New("bad repl promote request"))
	}
	if err := rs.Promote(binary.LittleEndian.Uint64(payload)); err != nil {
		return errorResponse(err)
	}
	return msgReplAck, nil
}

// ---- Database surface used by replication --------------------------------

// SetRepl installs the fleet control block. Must happen before the
// database serves traffic (NewReplState calls it); the field is read
// without synchronization afterwards.
func (db *Database) SetRepl(rs *ReplState) { db.repl = rs }

// Repl returns the installed control block, nil when replication is off.
func (db *Database) Repl() *ReplState { return db.repl }

// StoreSeq returns the durable record count — the replication offset of
// this node. Zero for an in-memory database.
func (db *Database) StoreSeq() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.store == nil {
		return 0
	}
	return db.store.Seq()
}

// OpenWALReader opens a streaming reader over the database's WAL at
// position from (see store.OpenReader for the position contract).
func (db *Database) OpenWALReader(from uint64) (*store.WALReader, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.store == nil {
		return nil, errors.New("server: replication requires a durable database (no data directory)")
	}
	return db.store.OpenReader(from)
}

// SnapshotBlob serializes the full database state for a replica full-sync,
// returning the WAL offset the blob covers. Taken under the read lock:
// ingest's append+publish happens under the write lock, so the published
// view is stable here and the blob and the offset are mutually consistent.
func (db *Database) SnapshotBlob() (seq uint64, blob []byte, err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.store == nil {
		return 0, nil, errors.New("server: replication requires a durable database (no data directory)")
	}
	var buf bytes.Buffer
	if err := db.writeState(db.cur.Load(), &buf); err != nil {
		return 0, nil, err
	}
	return db.store.Seq(), buf.Bytes(), nil
}

// ApplyReplRecords applies fetched WAL records to a replica database in
// order. Each record is a primary WAL payload; it is decoded and re-applied
// through the seq-tagged ingest path, whose deterministic re-encoding
// appends the byte-identical record to the replica's own WAL — so logs,
// sequence tags, and therefore Locate results match the primary exactly.
func (db *Database) ApplyReplRecords(ctx context.Context, records [][]byte) error {
	if !db.seqMode {
		return errors.New("server: replication requires a shard (seq-mode) database")
	}
	for _, rec := range records {
		ms, seqs, err := decodeSeqMappings(rec)
		if err != nil {
			return fmt.Errorf("server: decoding replicated record: %w", err)
		}
		if err := db.IngestSeq(ctx, ms, seqs); err != nil {
			return err
		}
	}
	return nil
}

// gateWrite rejects ingests on non-primaries with a redirect. Nil rs (no
// replication configured) gates nothing.
func (rs *ReplState) gateWrite() error {
	if rs == nil {
		return nil
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.role != RolePrimary {
		return &NotPrimaryError{Primary: rs.primaryAddr}
	}
	return nil
}

// gateRead redirects queries a replica may no longer answer: candidates
// always (their state is mid-replacement), replicas past the staleness
// bound. Fresh replicas and the primary serve locally. Nil rs gates
// nothing.
func (rs *ReplState) gateRead() error {
	if rs == nil {
		return nil
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	switch rs.role {
	case RolePrimary:
		return nil
	case RoleCandidate:
		return &NotPrimaryError{Primary: rs.primaryAddr}
	default:
		stale := time.Since(rs.lastContact)
		if rs.lagNs != nil {
			rs.lagNs.Set(int64(stale))
		}
		if stale > rs.maxStaleness {
			return &NotPrimaryError{Primary: rs.primaryAddr}
		}
		return nil
	}
}
