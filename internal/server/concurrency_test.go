package server

// Tests for the concurrent query path: the multiplexed v2 protocol
// (per-request routing under pipelining), the parallel Locate fan-out
// (bit-identical to the serial path), legacy v1 interop against a v2
// server, and context cancellation. All must stay -race clean.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"visualprint/internal/mathx"
	"visualprint/internal/pose"
	"visualprint/internal/sift"
)

// syntheticDB builds a database with deterministic contents: nCluster
// descriptors whose 3D positions form a tight spatial cluster (so queries
// reach the pose solver) plus nScatter descriptors scattered across the
// venue. The pose deadline is disabled so Locate is fully deterministic.
func syntheticDB(t testing.TB, seed int64, parallelism, nCluster, nScatter int) (*Database, []Mapping) {
	t.Helper()
	cfg := DefaultDatabaseConfig()
	cfg.LocateParallelism = parallelism
	cfg.Pose.Deadline = 0 // wall-clock budgets break determinism
	db, err := NewDatabase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	ms := make([]Mapping, 0, nCluster+nScatter)
	center := mathx.Vec3{X: 4, Y: 1.5, Z: 3}
	for i := 0; i < nCluster; i++ {
		var m Mapping
		for j := range m.Desc {
			m.Desc[j] = byte(rng.Intn(256))
		}
		m.Pos = mathx.Vec3{
			X: center.X + rng.Float64()*0.8 - 0.4,
			Y: center.Y + rng.Float64()*0.8 - 0.4,
			Z: center.Z + rng.Float64()*0.8 - 0.4,
		}
		ms = append(ms, m)
	}
	for i := 0; i < nScatter; i++ {
		var m Mapping
		for j := range m.Desc {
			m.Desc[j] = byte(rng.Intn(256))
		}
		m.Pos = mathx.Vec3{
			X: rng.Float64() * 12,
			Y: rng.Float64() * 3,
			Z: rng.Float64() * 9,
		}
		ms = append(ms, m)
	}
	if err := db.Ingest(context.Background(), ms); err != nil {
		t.Fatal(err)
	}
	return db, ms
}

// queryFromMappings builds a query whose keypoints carry the exact
// descriptors of ms[from:from+n] (guaranteed zero-distance LSH hits) laid
// out on a deterministic pixel grid.
func queryFromMappings(ms []Mapping, from, n int) []sift.Keypoint {
	kps := make([]sift.Keypoint, n)
	for i := range kps {
		kps[i].Desc = ms[from+i].Desc
		kps[i].X = float64(20 + (i%8)*22)
		kps[i].Y = float64(15 + (i/8)*18)
	}
	return kps
}

func testIntrinsics() pose.Intrinsics {
	return pose.Intrinsics{W: 200, H: 150, FovX: 1.1, FovY: 0.85}
}

// TestParallelLocateMatchesSerial: the fan-out path must produce
// bit-identical LocateResults to the serial path on fixed seeds.
func TestParallelLocateMatchesSerial(t *testing.T) {
	serial, ms := syntheticDB(t, 7, 1, 48, 40)
	parallel, _ := syntheticDB(t, 7, 8, 48, 40)
	for _, q := range []struct {
		from, n int
	}{
		{0, 48},  // all-cluster query, above the parallel threshold
		{8, 40},  // subset
		{40, 40}, // straddles cluster and scatter descriptors
	} {
		kps := queryFromMappings(ms, q.from, q.n)
		rs, errS := serial.Locate(context.Background(), kps, testIntrinsics())
		rp, errP := parallel.Locate(context.Background(), kps, testIntrinsics())
		if (errS == nil) != (errP == nil) || (errS != nil && errS.Error() != errP.Error()) {
			t.Fatalf("query %+v: serial err %v, parallel err %v", q, errS, errP)
		}
		if rs != rp {
			t.Fatalf("query %+v: serial %+v != parallel %+v", q, rs, rp)
		}
	}
	// Sanity: the comparison exercised the full pipeline, not just an
	// early error path.
	kps := queryFromMappings(ms, 0, 48)
	res, err := serial.Locate(context.Background(), kps, testIntrinsics())
	if err != nil {
		t.Fatalf("cluster query failed outright: %v", err)
	}
	if res.Matched < 3 {
		t.Fatalf("cluster query matched only %d keypoints", res.Matched)
	}
}

// TestSmallQueryStaysDeterministic covers the sequential-fallback boundary:
// queries below the threshold run serially even with parallelism enabled
// and must agree with a serial-only database too.
func TestSmallQueryStaysDeterministic(t *testing.T) {
	serial, ms := syntheticDB(t, 9, 1, 40, 20)
	parallel, _ := syntheticDB(t, 9, 4, 40, 20)
	kps := queryFromMappings(ms, 0, parallelLocateThreshold-2)
	rs, errS := serial.Locate(context.Background(), kps, testIntrinsics())
	rp, errP := parallel.Locate(context.Background(), kps, testIntrinsics())
	if (errS == nil) != (errP == nil) {
		t.Fatalf("serial err %v, parallel err %v", errS, errP)
	}
	if rs != rp {
		t.Fatalf("small query diverged: %+v != %+v", rs, rp)
	}
}

// TestPipelinedResponseRouting: concurrent v2 requests on shared
// connections must each receive the response to their own request. Three
// distinct queries with distinct precomputed answers are fired interleaved
// from many goroutines; any routing mixup surfaces as a wrong result.
func TestPipelinedResponseRouting(t *testing.T) {
	db, ms := syntheticDB(t, 21, 0, 48, 40)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln, db)
	s.Log = nil
	defer s.Close()

	queries := [][]sift.Keypoint{
		queryFromMappings(ms, 0, 48),
		queryFromMappings(ms, 4, 44),
		queryFromMappings(ms, 10, 38),
	}
	want := make([]LocateResult, len(queries))
	wantErr := make([]error, len(queries))
	for i, q := range queries {
		want[i], wantErr[i] = db.Locate(context.Background(), q, testIntrinsics())
		want[i].Generations = 0 // in-process only, not carried on the wire
	}

	const clients = 3
	const perClient = 12
	var wg sync.WaitGroup
	errc := make(chan error, clients*perClient)
	for ci := 0; ci < clients; ci++ {
		c := dialClient(t, s)
		for g := 0; g < perClient; g++ {
			wg.Add(1)
			go func(c *Client, g int) {
				defer wg.Done()
				qi := g % len(queries)
				res, err := c.Query(context.Background(), queries[qi], testIntrinsics())
				if (err == nil) != (wantErr[qi] == nil) {
					errc <- fmt.Errorf("query %d: err %v, want %v", qi, err, wantErr[qi])
					return
				}
				if err == nil && res != want[qi] {
					errc <- fmt.Errorf("query %d: got %+v, want %+v (response misrouted?)", qi, res, want[qi])
				}
			}(c, g)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestConcurrentMixedWorkload stresses pipelined heterogeneous requests —
// queries, stats, ingests and oracle fetches racing on shared and separate
// connections — asserting per-request response-type routing throughout.
func TestConcurrentMixedWorkload(t *testing.T) {
	db, ms := syntheticDB(t, 33, 0, 48, 20)
	base := db.Len()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln, db)
	s.Log = nil
	defer s.Close()

	const clients = 4
	const opsPerClient = 8
	var wg sync.WaitGroup
	errc := make(chan error, clients*opsPerClient)
	var ingested int64
	var ingestMu sync.Mutex
	for ci := 0; ci < clients; ci++ {
		c := dialClient(t, s)
		for g := 0; g < opsPerClient; g++ {
			wg.Add(1)
			go func(c *Client, ci, g int) {
				defer wg.Done()
				ctx := context.Background()
				switch g % 4 {
				case 0: // localization query
					if _, err := c.Query(ctx, queryFromMappings(ms, 0, 40), testIntrinsics()); err != nil && !IsRemote(err) {
						errc <- fmt.Errorf("query transport error: %v", err)
					}
				case 1: // stats must always parse as a count
					n, err := c.Stats(ctx)
					if err != nil {
						errc <- fmt.Errorf("stats: %v", err)
					} else if n < uint64(base) {
						errc <- fmt.Errorf("stats %d below base %d", n, base)
					}
				case 2: // ingest a distinct batch
					batch := make([]Mapping, 3)
					for i := range batch {
						batch[i].Desc[0] = byte(ci)
						batch[i].Desc[1] = byte(g)
						batch[i].Desc[2] = byte(i)
						batch[i].Pos = mathx.Vec3{X: float64(ci), Y: 1, Z: float64(g)}
					}
					total, err := c.Ingest(ctx, batch)
					if err != nil {
						errc <- fmt.Errorf("ingest: %v", err)
						return
					}
					ingestMu.Lock()
					ingested += int64(len(batch))
					ingestMu.Unlock()
					if total < base+len(batch) {
						errc <- fmt.Errorf("ingest ack %d below %d", total, base+len(batch))
					}
				case 3: // typed error routing: 2 keypoints can never match
					_, err := c.Query(ctx, queryFromMappings(ms, 0, 2), testIntrinsics())
					if !errors.Is(err, ErrTooFewMatches) {
						errc <- fmt.Errorf("want ErrTooFewMatches, got %v", err)
					}
				}
			}(c, ci, g)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got := int64(db.Len()); got != int64(base)+ingested {
		t.Errorf("db has %d mappings, want %d", got, int64(base)+ingested)
	}
}

// TestV1ClientAgainstV2Server: the legacy ID-less framing must still
// round-trip every message type against the concurrent server.
func TestV1ClientAgainstV2Server(t *testing.T) {
	db, ms := syntheticDB(t, 5, 0, 48, 10)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln, db)
	s.Log = nil
	defer s.Close()
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClientV1(conn)
	defer c.Close()
	ctx := context.Background()

	// msgIngest
	extra := make([]Mapping, 5)
	for i := range extra {
		extra[i].Desc[5] = byte(i + 1)
	}
	total, err := c.Ingest(ctx, extra)
	if err != nil {
		t.Fatalf("v1 ingest: %v", err)
	}
	if total != db.Len() {
		t.Errorf("v1 ingest ack %d, db %d", total, db.Len())
	}
	// msgStats
	n, err := c.Stats(ctx)
	if err != nil || n != uint64(db.Len()) {
		t.Fatalf("v1 stats = %d, err = %v", n, err)
	}
	// msgGetOracle
	oracle, size, err := c.FetchOracle(ctx)
	if err != nil || size <= 0 {
		t.Fatalf("v1 fetch oracle: size %d, err %v", size, err)
	}
	// msgGetDiff (incremental refresh after more inserts)
	more := make([]Mapping, 4)
	for i := range more {
		more[i].Desc[9] = byte(i + 1)
	}
	if _, err := c.Ingest(ctx, more); err != nil {
		t.Fatal(err)
	}
	if _, _, incremental, err := c.RefreshOracle(ctx, oracle); err != nil || !incremental {
		t.Fatalf("v1 refresh: incremental=%v err=%v", incremental, err)
	}
	// msgQuery, success and typed-error paths
	if _, err := c.Query(ctx, queryFromMappings(ms, 0, 40), testIntrinsics()); err != nil && !IsRemote(err) {
		t.Fatalf("v1 query transport error: %v", err)
	}
	if _, err := c.Query(ctx, queryFromMappings(ms, 0, 2), testIntrinsics()); !errors.Is(err, ErrTooFewMatches) {
		t.Fatalf("v1 typed error lost: %v", err)
	}
	// v1 pipelining: concurrent calls on the FIFO-routed client.
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Stats(context.Background()); err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestConcurrentOracleFilteringAndIngest: the gated oracle readers
// (Database.SelectUnique / Database.Uniqueness) must be safe against
// concurrent Ingest — the hazard the raw Oracle() accessor documents. Run
// with -race (make verify does): the readers take the database read lock
// for the whole oracle query, so filter reads can never interleave with
// Ingest's counter writes.
func TestConcurrentOracleFilteringAndIngest(t *testing.T) {
	db, ms := syntheticDB(t, 57, 0, 48, 40)
	kps := queryFromMappings(ms, 0, 32)

	const readers = 3
	const iters = 40
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if w%2 == 0 {
					sel, err := db.SelectUnique(kps, 10)
					if err != nil {
						errc <- fmt.Errorf("SelectUnique: %v", err)
						return
					}
					if len(sel) != 10 {
						errc <- fmt.Errorf("SelectUnique returned %d keypoints, want 10", len(sel))
						return
					}
				} else {
					if _, err := db.Uniqueness(ms[i%len(ms)].Desc[:]); err != nil {
						errc <- fmt.Errorf("Uniqueness: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(58))
		for i := 0; i < iters; i++ {
			batch := make([]Mapping, 4)
			for b := range batch {
				for j := range batch[b].Desc {
					batch[b].Desc[j] = byte(rng.Intn(256))
				}
				batch[b].Pos = mathx.Vec3{X: rng.Float64() * 12, Y: rng.Float64() * 3, Z: rng.Float64() * 9}
			}
			if err := db.Ingest(context.Background(), batch); err != nil {
				errc <- fmt.Errorf("Ingest: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// Every reader and the writer ran to completion; the oracle now reflects
	// all inserts.
	if got := db.Oracle().Inserts(); got != uint64(db.Len()) {
		t.Errorf("oracle inserts %d != mappings %d", got, db.Len())
	}
}

// TestContextCancellation: a context deadline must abort the response wait,
// and an already-cancelled context must fail fast; the connection state
// stays coherent for the demux loop.
func TestContextCancellation(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	defer serverEnd.Close()
	// A black-hole server: consumes everything, answers nothing.
	go io.Copy(io.Discard, serverEnd)
	c := NewClient(clientEnd)
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Stats(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation did not abort the wait promptly")
	}

	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := c.Stats(done); !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
}

// TestCloseFailsInFlight: closing the connection must unblock waiters with
// a transport error rather than hanging them.
func TestCloseFailsInFlight(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	defer serverEnd.Close()
	go io.Copy(io.Discard, serverEnd)
	c := NewClient(clientEnd)
	errc := make(chan error, 1)
	go func() {
		_, err := c.Stats(context.Background())
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("in-flight call succeeded after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call hung after Close")
	}
}
