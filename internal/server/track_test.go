package server

import (
	"context"
	"testing"

	"visualprint/internal/mathx"
	"visualprint/internal/obs"
	"visualprint/internal/pose"
	"visualprint/internal/sift"
	"visualprint/internal/track"
)

// trackFixture builds an instrumented router over the synthetic corpus
// ingested into the default venue.
func trackFixture(t *testing.T) (*Router, *obs.Registry, []Mapping, queryFixture) {
	t.Helper()
	cfg := routerTestConfig()
	ms, kps, intr := syntheticCorpus(7, 160, 1200, 200)
	def := newTestDB(t, cfg)
	r := NewRouter(def, cfg)
	reg := obs.NewRegistry()
	r.instrument(reg)
	if err := def.Ingest(context.Background(), ms); err != nil {
		t.Fatal(err)
	}
	return r, reg, ms, queryFixture{kps: kps, intr: intr}
}

type queryFixture struct {
	kps  []sift.Keypoint
	intr pose.Intrinsics
}

// TestLocateSessionWarmAcceptance: the second query of a session must be
// answered by an accepted warm solve that consumes no more DE generations
// than the cold solve, and the session metrics must record it.
func TestLocateSessionWarmAcceptance(t *testing.T) {
	r, reg, _, q := trackFixture(t)
	ctx := context.Background()
	const sid = 77

	cold, err := r.LocateSession(ctx, "", sid, q.kps, q.intr)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("track_cold").Value(); got != 1 {
		t.Fatalf("track_cold = %d after first query, want 1", got)
	}
	if cold.Generations == 0 {
		t.Fatal("cold solve reported zero generations")
	}

	warm, err := r.LocateSession(ctx, "", sid, q.kps, q.intr)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("track_warm").Value(); got != 1 {
		t.Fatalf("track_warm = %d after second query, want 1", got)
	}
	if got := reg.Counter("track_prior_rejected").Value(); got != 0 {
		t.Fatalf("track_prior_rejected = %d, want 0", got)
	}
	if warm.Generations > cold.Generations {
		t.Fatalf("warm solve used %d generations, cold %d", warm.Generations, cold.Generations)
	}
	if d := warm.Position.Dist(cold.Position); d > 0.5 {
		t.Fatalf("warm pose drifted %.3f m from cold pose", d)
	}
	if reg.Gauge("track_sessions").Value() != 1 {
		t.Fatalf("track_sessions = %d, want 1", reg.Gauge("track_sessions").Value())
	}
	if h := reg.Histogram("track_prior_error_mm"); h.Count() != 1 {
		t.Fatalf("track_prior_error_mm count = %d, want 1", h.Count())
	}
}

// TestLocateSessionZeroSidBitIdentical: sid == 0 is the plain Locate path
// — bit-identical result, and no session state is created.
func TestLocateSessionZeroSidBitIdentical(t *testing.T) {
	r, _, _, q := trackFixture(t)
	ctx := context.Background()
	plain, errP := r.Locate(ctx, "", q.kps, q.intr)
	viaSession, errS := r.LocateSession(ctx, "", 0, q.kps, q.intr)
	requireBitIdentical(t, plain, errP, viaSession, errS)
	if n := r.trackState().tb.Len(); n != 0 {
		t.Fatalf("sid 0 created %d session(s)", n)
	}
}

// TestLocateSessionRejectedPriorBitIdentical is the headline fallback
// guarantee: when the residual gate rejects the prior, the cold re-solve
// over the same candidates must reproduce the session-less Locate answer
// down to the float bits.
func TestLocateSessionRejectedPriorBitIdentical(t *testing.T) {
	r, reg, _, q := trackFixture(t)
	tcfg := track.DefaultConfig()
	// Unreachably tight floor and factor: every prior is rejected.
	tcfg.AcceptResidual = 1e-12
	tcfg.AcceptFactor = 1e-9
	r.ConfigureTracking(tcfg)
	ctx := context.Background()
	const sid = 31

	if _, err := r.LocateSession(ctx, "", sid, q.kps, q.intr); err != nil {
		t.Fatal(err)
	}
	fell, errS := r.LocateSession(ctx, "", sid, q.kps, q.intr)
	plain, errP := r.Locate(ctx, "", q.kps, q.intr)
	requireBitIdentical(t, plain, errP, fell, errS)
	if got := reg.Counter("track_prior_rejected").Value(); got != 1 {
		t.Fatalf("track_prior_rejected = %d, want 1", got)
	}
	if got := reg.Counter("track_warm").Value(); got != 0 {
		t.Fatalf("track_warm = %d, want 0", got)
	}
}

// TestLocateSessionShardedWarm runs the same session flow through the
// scatter-gather path of a 4-shard venue: warm acceptance on the repeat
// query, and bit-identity with the unsharded database on prior rejection.
func TestLocateSessionShardedWarm(t *testing.T) {
	cfg := routerTestConfig()
	ms, kps, intr := syntheticCorpus(7, 160, 1200, 200)
	single, r, venueName := shardedFixture(t, cfg, 4, ms, 311)
	reg := obs.NewRegistry()
	r.instrument(reg)
	ctx := context.Background()
	const sid = 55

	cold, err := r.LocateSession(ctx, venueName, sid, kps, intr)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := r.LocateSession(ctx, venueName, sid, kps, intr)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("track_warm").Value(); got != 1 {
		t.Fatalf("track_warm = %d, want 1", got)
	}
	if warm.Generations > cold.Generations {
		t.Fatalf("sharded warm solve used %d generations, cold %d", warm.Generations, cold.Generations)
	}

	// Rejected prior on the sharded path must still equal the unsharded
	// cold answer bit for bit (the existing scatter-gather guarantee).
	tcfg := track.DefaultConfig()
	tcfg.AcceptResidual = 1e-12
	tcfg.AcceptFactor = 1e-9
	r.ConfigureTracking(tcfg)
	if _, err := r.LocateSession(ctx, venueName, sid, kps, intr); err != nil {
		t.Fatal(err)
	}
	fell, errS := r.LocateSession(ctx, venueName, sid, kps, intr)
	rs, errR := single.Locate(ctx, kps, intr)
	requireBitIdentical(t, rs, errR, fell, errS)
}

// TestSessionVenueScoping: the same session ID in two venues keeps two
// independent histories (the table key folds the venue name in).
func TestSessionVenueScoping(t *testing.T) {
	if k1, k2 := sessionKey("venue-a", 9), sessionKey("venue-b", 9); k1 == k2 {
		t.Fatal("session keys collide across venues")
	}
	if k := sessionKey("", 9); k != 9 {
		t.Fatalf("default-venue key = %d, want the raw sid", k)
	}
}

// TestEndSessionForgets: EndSession drops the tracked state so the next
// query of the same sid is cold again.
func TestEndSessionForgets(t *testing.T) {
	r, reg, _, q := trackFixture(t)
	ctx := context.Background()
	const sid = 12
	if _, err := r.LocateSession(ctx, "", sid, q.kps, q.intr); err != nil {
		t.Fatal(err)
	}
	if n := r.trackState().tb.Len(); n != 1 {
		t.Fatalf("Len = %d after first session query, want 1", n)
	}
	r.EndSession("", sid)
	if n := r.trackState().tb.Len(); n != 0 {
		t.Fatalf("Len = %d after EndSession, want 0", n)
	}
	if _, err := r.LocateSession(ctx, "", sid, q.kps, q.intr); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("track_cold").Value(); got != 2 {
		t.Fatalf("track_cold = %d, want 2 (both queries cold)", got)
	}
	r.EndSession("", 0) // no-op
}

// TestWarmPoseOptionsLayering pins what the warm option set changes — and,
// by elimination, what it leaves alone.
func TestWarmPoseOptionsLayering(t *testing.T) {
	cold := routerTestConfig().Pose
	p := track.Prior{Pos: mathx.Vec3{X: 1, Y: 2, Z: 3}, Radius: 0.75}
	tcfg := track.DefaultConfig()
	w := warmPoseOptions(cold, p, tcfg)
	if w.PriorPos != p.Pos || w.PriorRadius != p.Radius {
		t.Fatalf("prior not threaded: %+v", w)
	}
	if w.MinResidual != tcfg.WarmMinResidual {
		t.Fatalf("MinResidual = %v, want %v", w.MinResidual, tcfg.WarmMinResidual)
	}
	if w.Tol != tcfg.WarmTol {
		t.Fatalf("Tol = %v, want the warm override %v", w.Tol, tcfg.WarmTol)
	}
	w.PriorPos, w.PriorRadius, w.MinResidual, w.Tol = cold.PriorPos, cold.PriorRadius, cold.MinResidual, cold.Tol
	if w != cold {
		t.Fatalf("warm options changed more than the prior fields:\n cold: %+v\n warm: %+v", cold, w)
	}

	// WarmTol zero (not defaulted — e.g. a hand-built Config) keeps the
	// cold tolerance.
	tcfg.WarmTol = 0
	if w := warmPoseOptions(cold, p, tcfg); w.Tol != cold.Tol {
		t.Fatalf("Tol = %v with WarmTol 0, want cold's %v", w.Tol, cold.Tol)
	}
}
