package server

// Tests for the RCU read-snapshot protocol (rcu.go): every reader must
// observe a complete published generation — never a partially built index —
// and results must be bit-identical to a serialized run of the same
// batches. All must stay -race clean; the race detector is what proves the
// pin/publish handshake sound (a reader touching a retired generation
// mid-mutation would trip it).

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// resultBits flattens a LocateResult into comparable Float64bits, the
// bit-identity currency the repo's equivalence tests use (== on floats
// would conflate 0 and -0 and choke on NaN).
func resultBits(r LocateResult) [6]uint64 {
	return [6]uint64{
		math.Float64bits(r.Position.X),
		math.Float64bits(r.Position.Y),
		math.Float64bits(r.Position.Z),
		math.Float64bits(r.Yaw),
		math.Float64bits(r.Residual),
		uint64(r.Matched),
	}
}

// TestConcurrentIngestLocateSnapshots drives Ingest batches against a fleet
// of lock-free readers. Each reader iteration pins the current view and
// asserts it is internally complete (index, positions and oracle agree on
// the record count, which sits exactly on a batch boundary), then runs a
// Locate whose result must be Float64bits-identical to the golden result of
// a serialized locked run over the same prefix of batches. Run under -race
// this is the snapshot-consistency proof for the whole publish/retire
// protocol.
func TestConcurrentIngestLocateSnapshots(t *testing.T) {
	const (
		batches   = 8
		batchSize = 22
		readers   = 4
	)
	// One deterministic mapping stream, sliced into batches.
	_, ms := syntheticDB(t, 11, 1, 96, 80)
	if len(ms) < batches*batchSize {
		t.Fatalf("need %d mappings, have %d", batches*batchSize, len(ms))
	}
	ms = ms[:batches*batchSize]
	kps := queryFromMappings(ms, 0, 20) // descriptors from the first batch

	// Golden: serialized databases holding each prefix of batches, queried
	// with no concurrency. golden[i] is the expected result (or error
	// string) after i+1 batches; an empty database returns ErrEmptyDatabase.
	type outcome struct {
		bits [6]uint64
		err  string
	}
	goldenFor := func(nBatches int) outcome {
		cfg := DefaultDatabaseConfig()
		cfg.Pose.Deadline = 0
		gdb, err := NewDatabase(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < nBatches; b++ {
			if err := gdb.Ingest(context.Background(), ms[b*batchSize:(b+1)*batchSize]); err != nil {
				t.Fatal(err)
			}
		}
		res, err := gdb.Locate(context.Background(), kps, testIntrinsics())
		if err != nil {
			return outcome{err: err.Error()}
		}
		return outcome{bits: resultBits(res)}
	}
	golden := make(map[int]outcome, batches+1)
	for i := 0; i <= batches; i++ {
		golden[i] = goldenFor(i)
	}

	cfg := DefaultDatabaseConfig()
	cfg.Pose.Deadline = 0
	db, err := NewDatabase(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg       sync.WaitGroup
		done     atomic.Bool
		checks   atomic.Int64
		failOnce sync.Once
		failMsg  atomic.Value
	)
	fail := func(msg string) {
		failOnce.Do(func() { failMsg.Store(msg) })
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				// Completeness: a pinned view must be a published batch
				// boundary with index, positions and oracle in agreement —
				// a torn generation would disagree on at least one count.
				v, tok := db.pinView()
				n := len(v.positions)
				if n%batchSize != 0 || n > batches*batchSize {
					db.unpin(v, tok)
					fail("pinned view exposes a mid-batch state")
					return
				}
				if v.index.Len() != n || v.oracle.Inserts() != uint64(n) {
					db.unpin(v, tok)
					fail("pinned view has index/positions/oracle out of sync")
					return
				}
				db.unpin(v, tok)

				res, err := db.Locate(context.Background(), kps, testIntrinsics())
				got := outcome{}
				if err != nil {
					got.err = err.Error()
				} else {
					got.bits = resultBits(res)
				}
				matched := false
				for i := 0; i <= batches; i++ {
					if golden[i] == got {
						matched = true
						break
					}
				}
				if !matched {
					fail("concurrent Locate result matches no serialized prefix")
					return
				}
				checks.Add(1)
			}
		}()
	}
	for b := 0; b < batches; b++ {
		if err := db.Ingest(context.Background(), ms[b*batchSize:(b+1)*batchSize]); err != nil {
			t.Fatal(err)
		}
	}
	// Let the readers chew on the final state before stopping them.
	deadline := time.Now().Add(300 * time.Millisecond)
	for checks.Load() < int64(readers*2) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	done.Store(true)
	wg.Wait()
	if msg := failMsg.Load(); msg != nil {
		t.Fatal(msg.(string))
	}
	if checks.Load() == 0 {
		t.Fatal("readers completed no checked Locates")
	}

	// The settled concurrent database must answer exactly like the full
	// serialized run.
	res, err := db.Locate(context.Background(), kps, testIntrinsics())
	if err != nil {
		t.Fatalf("final locate: %v", err)
	}
	want := golden[batches]
	if want.err != "" || resultBits(res) != want.bits {
		t.Fatalf("settled result %+v not bit-identical to serialized run %+v", resultBits(res), want)
	}
}

// TestGenerationsStayBitIdentical pins the double-apply invariant: a
// database grown through many small batches (generations alternating every
// batch) answers Float64bits-identically to one built in a single batch —
// i.e. applying each batch twice, once per generation, never diverges the
// live structures from a straight serial build.
func TestGenerationsStayBitIdentical(t *testing.T) {
	_, ms := syntheticDB(t, 23, 1, 64, 48)
	cfg := DefaultDatabaseConfig()
	cfg.Pose.Deadline = 0

	batched, err := NewDatabase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(ms); i += 7 { // odd batch size: exercises uneven boundaries
		end := min(i+7, len(ms))
		if err := batched.Ingest(context.Background(), ms[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	single, err := NewDatabase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := single.Ingest(context.Background(), ms); err != nil {
		t.Fatal(err)
	}

	for _, q := range []struct{ from, n int }{{0, 40}, {20, 64}, {60, 52}} {
		kps := queryFromMappings(ms, q.from, q.n)
		rb, errB := batched.Locate(context.Background(), kps, testIntrinsics())
		rs, errS := single.Locate(context.Background(), kps, testIntrinsics())
		if (errB == nil) != (errS == nil) || (errB != nil && errB.Error() != errS.Error()) {
			t.Fatalf("query %+v: batched err %v, single err %v", q, errB, errS)
		}
		if errB == nil && resultBits(rb) != resultBits(rs) {
			t.Fatalf("query %+v: batched %+v != single %+v", q, rb, rs)
		}
	}
	if batched.Len() != single.Len() {
		t.Fatalf("batched holds %d mappings, single %d", batched.Len(), single.Len())
	}
}

// TestLocateLockFreeUnderWriteLock is the deterministic lock-freedom proof:
// with db.mu exclusively held (as a publishing ingest or a recovery holds
// it), Locate must still complete — it reads a pinned snapshot and never
// touches the mutex. Before the RCU refactor this deadlocked until the
// lock was released.
func TestLocateLockFreeUnderWriteLock(t *testing.T) {
	db, ms := syntheticDB(t, 7, 1, 48, 40)
	kps := queryFromMappings(ms, 0, 32)

	db.mu.Lock()
	defer db.mu.Unlock()
	type reply struct {
		res LocateResult
		err error
	}
	ch := make(chan reply, 1)
	go func() {
		res, err := db.Locate(context.Background(), kps, testIntrinsics())
		ch <- reply{res, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("locate under held write lock: %v", r.err)
		}
		if r.res.Matched < 3 {
			t.Fatalf("locate under held write lock matched only %d", r.res.Matched)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Locate blocked behind db.mu — the read path is not lock-free")
	}
}

// TestStatsAndOracleReadsUnderWriteLock extends the lock-freedom proof to
// the other read surfaces that moved off db.mu: Len, Bounds, Oracle
// scoring and OracleClone must all complete while the write lock is held.
// (Stats is exercised for its pinned half via a fresh in-memory database,
// whose store half reads nothing under mu contention here — see Stats for
// the pin-then-lock ordering rule.)
func TestStatsAndOracleReadsUnderWriteLock(t *testing.T) {
	db, ms := syntheticDB(t, 7, 1, 48, 40)

	db.mu.Lock()
	done := make(chan error, 1)
	go func() {
		if n := db.Len(); n != len(ms) {
			done <- errMismatch("Len", n, len(ms))
			return
		}
		if _, _, ok := db.Bounds(); !ok {
			done <- errMismatch("Bounds ok", 0, 1)
			return
		}
		if _, err := db.Uniqueness(ms[0].Desc[:]); err != nil {
			done <- err
			return
		}
		if _, err := db.OracleClone(); err != nil {
			done <- err
			return
		}
		done <- nil
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		db.mu.Unlock()
		t.Fatal("read surface blocked behind db.mu")
	}
	db.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	// Stats takes mu.RLock for its store half, so it must be checked with
	// the lock released — its pinned half is covered by the fact it returns
	// consistent engine numbers at all.
	s := db.Stats()
	if s.Mappings != uint64(len(ms)) {
		t.Fatalf("Stats.Mappings = %d, want %d", s.Mappings, len(ms))
	}
}

type errMismatchT struct {
	what      string
	got, want int
}

func (e errMismatchT) Error() string {
	return e.what + " mismatch"
}

func errMismatch(what string, got, want int) error {
	return errMismatchT{what, got, want}
}
