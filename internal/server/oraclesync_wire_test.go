package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"visualprint/internal/codec"
	"visualprint/internal/core"
	"visualprint/internal/odelta"
)

// oracleBytes serializes an oracle for byte-equality comparison.
func oracleBytes(t testing.TB, o *core.Oracle) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := o.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// randomBatch builds n random mappings from rng (no geometric structure —
// oracle distribution only cares about descriptor inserts).
func randomBatch(rng *rand.Rand, n int) []Mapping {
	ms := make([]Mapping, n)
	for i := range ms {
		for j := range ms[i].Desc {
			ms[i].Desc[j] = byte(rng.Intn(256))
		}
		ms[i].Pos.X = rng.Float64() * 10
		ms[i].Pos.Y = rng.Float64() * 3
		ms[i].Pos.Z = rng.Float64() * 9
	}
	return ms
}

// TestOracleSyncLifecycleOverWire drives the OracleSync handle through the
// full network stack: first Sync downloads a full blob, a Sync with no
// server change is answered by the fixed-size unchanged ack, and a Sync
// after more ingests applies a delta — each state byte-equal to what a
// fresh full fetch sees, with Version tracking the server's epoch.
func TestOracleSyncLifecycleOverWire(t *testing.T) {
	s := startVenueServer(t)
	c, err := Dial(s.Addr().String(), WithLogger(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	if _, err := c.Ingest(ctx, randomBatch(rng, 40)); err != nil {
		t.Fatal(err)
	}

	h := c.OracleSync()
	if _, _, ok := h.Version(); ok {
		t.Fatal("fresh handle claims a version before any sync")
	}
	o, err := h.Sync(ctx)
	if err != nil {
		t.Fatalf("first sync: %v", err)
	}
	full := h.TransferBytes()
	if full == 0 {
		t.Fatal("first sync transferred zero bytes")
	}
	epoch, inserts, ok := h.Version()
	if !ok || epoch == 0 || inserts != o.Inserts() {
		t.Fatalf("version after first sync = (%d, %d, %v)", epoch, inserts, ok)
	}

	// No server change: the sync must be answered by the 16-byte ack and
	// return the same held oracle.
	o2, err := h.Sync(ctx)
	if err != nil {
		t.Fatalf("unchanged sync: %v", err)
	}
	if o2 != o {
		t.Fatal("unchanged sync replaced the held oracle")
	}
	if got := h.TransferBytes() - full; got != 16 {
		t.Fatalf("unchanged sync transferred %d bytes, want the 16-byte version ack", got)
	}

	// More ingests: the sync must advance the version and land byte-equal
	// to a fresh full fetch, for much less than a full blob.
	if _, err := c.Ingest(ctx, randomBatch(rng, 3)); err != nil {
		t.Fatal(err)
	}
	before := h.TransferBytes()
	o3, err := h.Sync(ctx)
	if err != nil {
		t.Fatalf("delta sync: %v", err)
	}
	deltaCost := h.TransferBytes() - before
	fresh, blobSize, err := c.FetchOracle(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oracleBytes(t, o3), oracleBytes(t, fresh)) {
		t.Fatal("delta sync diverged from a full fetch")
	}
	if deltaCost >= blobSize {
		t.Fatalf("small-batch delta cost %d >= full blob %d: delta path not engaged", deltaCost, blobSize)
	}
	e2, i2, ok := h.Version()
	if !ok || e2 <= epoch || i2 != o3.Inserts() {
		t.Fatalf("version after delta sync = (%d, %d, %v), was (%d, %d)", e2, i2, ok, epoch, inserts)
	}
}

// TestOracleSyncByteEqualEveryEpoch is the acceptance property test: over
// randomized ingest sequences, handles syncing at different cadences — one
// every epoch, one every third, one every seventh — must land byte-equal
// to a fresh full fetch after every sync, whether the server answered with
// a delta chain (lag within the retained window) or a full blob.
func TestOracleSyncByteEqualEveryEpoch(t *testing.T) {
	for _, seed := range []int64{3, 17, 99} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := startVenueServer(t)
			c, err := Dial(s.Addr().String(), WithLogger(nil))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			ctx := context.Background()
			rng := rand.New(rand.NewSource(seed))

			cadences := map[int]*OracleSync{1: c.OracleSync(), 3: c.OracleSync(), 7: c.OracleSync()}
			epochs := 14
			if testing.Short() {
				epochs = 7
			}
			for e := 1; e <= epochs; e++ {
				if _, err := c.Ingest(ctx, randomBatch(rng, 1+rng.Intn(6))); err != nil {
					t.Fatal(err)
				}
				fresh, _, err := c.FetchOracle(ctx)
				if err != nil {
					t.Fatal(err)
				}
				want := oracleBytes(t, fresh)
				for cadence, h := range cadences {
					if e%cadence != 0 {
						continue
					}
					o, err := h.Sync(ctx)
					if err != nil {
						t.Fatalf("epoch %d cadence %d: %v", e, cadence, err)
					}
					if !bytes.Equal(oracleBytes(t, o), want) {
						t.Fatalf("epoch %d cadence %d: synced oracle differs from full fetch", e, cadence)
					}
				}
			}
		})
	}
}

// TestOracleSyncCountCollisionRegression is the regression for the
// RefreshOracle unsoundness: its not-modified check compares insert counts
// alone, so a client whose oracle comes from a divergent history — here a
// failover onto a server rebuilt with different data but an identical
// insert count — is told "unchanged" while holding wrong cells. The
// versioned sync compares (epoch, inserts) identities and must detect the
// divergence and converge byte-equal.
func TestOracleSyncCountCollisionRegression(t *testing.T) {
	ctx := context.Background()
	// History A: one batch. History B: the same mapping count as two
	// batches of different descriptors — same insert count (inserts per
	// mapping are fixed by the hash family), different cells, different
	// epoch count.
	sA, sB := startVenueServer(t), startVenueServer(t)
	msA := randomBatch(rand.New(rand.NewSource(1)), 12)
	msB := randomBatch(rand.New(rand.NewSource(2)), 12)
	cA, err := Dial(sA.Addr().String(), WithLogger(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer cA.Close()
	cB, err := Dial(sB.Addr().String(), WithLogger(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer cB.Close()
	if _, err := cA.Ingest(ctx, msA); err != nil {
		t.Fatal(err)
	}
	for _, half := range [][]Mapping{msB[:7], msB[7:]} {
		if _, err := cB.Ingest(ctx, half); err != nil {
			t.Fatal(err)
		}
	}

	held, _, err := cA.FetchOracle(ctx)
	if err != nil {
		t.Fatal(err)
	}
	truth, _, err := cB.FetchOracle(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if held.Inserts() != truth.Inserts() {
		t.Fatalf("test premise broken: insert counts differ (%d vs %d)", held.Inserts(), truth.Inserts())
	}
	if bytes.Equal(oracleBytes(t, held), oracleBytes(t, truth)) {
		t.Fatal("test premise broken: different histories produced identical oracles")
	}

	// The deprecated refresh path is fooled by the collision: it keeps the
	// stale oracle (this is the documented wire behavior old clients rely
	// on, preserved byte-identically — and exactly why it is deprecated).
	refreshed, _, _, err := cB.RefreshOracle(ctx, held)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oracleBytes(t, refreshed), oracleBytes(t, held)) {
		t.Fatal("RefreshOracle no longer reports the count collision as unchanged; update this regression test and the OracleSync docs")
	}

	// The versioned sync must not be fooled: a handle holding history A's
	// version identity against server B resolves the divergence.
	h := &OracleSync{c: cB, oracle: held, epoch: 1, inserts: held.Inserts(), versioned: true}
	o, err := h.Sync(ctx)
	if err != nil {
		t.Fatalf("versioned sync across histories: %v", err)
	}
	if !bytes.Equal(oracleBytes(t, o), oracleBytes(t, truth)) {
		t.Fatal("versioned sync kept a stale oracle across an insert-count collision")
	}
}

// preEpochServerStub speaks the pre-epoch wire behavior over the server
// end of a pipe: it rejects the versioned-sync and subscription types as
// unknown (exactly as the old dispatch switch does) and answers the legacy
// oracle ladder from a real database. It records the frame types it saw.
func preEpochServerStub(t testing.TB, serverEnd net.Conn, db *Database) func() []byte {
	t.Helper()
	var mu sync.Mutex
	var typesSeen []byte
	go func() {
		hdr := make([]byte, preambleSize)
		if _, err := io.ReadFull(serverEnd, hdr); err != nil {
			return
		}
		for {
			id, typ, _, err := readFrameV2(serverEnd)
			if err != nil {
				return
			}
			mu.Lock()
			typesSeen = append(typesSeen, typ)
			mu.Unlock()
			switch typ {
			case msgOracleSync:
				writeFrameV2(serverEnd, id, msgError, encodeErrorPayload(errors.New("unknown message type 31")))
			case msgSubscribeOracle:
				writeFrameV2(serverEnd, id, msgError, encodeErrorPayload(errors.New("unknown message type 35")))
			case msgGetOracle:
				blob, err := db.OracleBlob()
				if err != nil {
					writeFrameV2(serverEnd, id, msgError, encodeErrorPayload(err))
					continue
				}
				writeFrameV2(serverEnd, id, msgOracleBlob, blob)
			case msgGetDiff2:
				ack := make([]byte, 8)
				binary.LittleEndian.PutUint64(ack, db.OracleInserts())
				writeFrameV2(serverEnd, id, msgDiffUnchanged, ack)
			default:
				writeFrameV2(serverEnd, id, msgStatsResult, make([]byte, 8))
			}
		}
	}()
	return func() []byte {
		mu.Lock()
		defer mu.Unlock()
		return append([]byte(nil), typesSeen...)
	}
}

// TestOracleSyncOldServerFallback: OracleSync.Sync against a server
// predating versioned epochs falls back to the legacy fetch/refresh wire
// requests — and the capability probe is sticky, so the unknown type is
// tried exactly once per connection.
func TestOracleSyncOldServerFallback(t *testing.T) {
	db := newTestDB(t, routerTestConfig())
	if err := db.Ingest(context.Background(), randomBatch(rand.New(rand.NewSource(5)), 20)); err != nil {
		t.Fatal(err)
	}
	clientEnd, serverEnd := net.Pipe()
	defer clientEnd.Close()
	defer serverEnd.Close()
	seen := preEpochServerStub(t, serverEnd, db)
	c := NewClient(clientEnd, WithLogger(nil))
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	h := c.OracleSync()
	o, err := h.Sync(ctx)
	if err != nil {
		t.Fatalf("sync against pre-epoch server: %v", err)
	}
	if !bytes.Equal(oracleBytes(t, o), oracleBytes(t, db.Oracle())) {
		t.Fatal("fallback full fetch diverged from the server oracle")
	}
	if _, _, ok := h.Version(); ok {
		t.Fatal("legacy fallback claims a version identity (legacy responses carry no epoch)")
	}
	// Second sync: the probe outcome is recorded for the connection, so
	// no second msgOracleSync hits the wire — the handle goes straight to
	// the legacy refresh, which acks unchanged.
	if _, err := h.Sync(ctx); err != nil {
		t.Fatalf("second sync: %v", err)
	}
	frames := seen()
	if n := countType(frames, msgOracleSync); n != 1 {
		t.Fatalf("msgOracleSync sent %d times across two syncs: capability probe not sticky", n)
	}
	if countType(frames, msgGetOracle) != 1 || countType(frames, msgGetDiff2) != 1 {
		t.Fatalf("fallback frames = %v, want one legacy fetch then one legacy refresh", frames)
	}
}

// TestOracleWatchOldServerUnsupported: Watch against a server predating
// subscriptions fails with the typed ErrWatchUnsupported — and the
// rejection is sticky, so a second Watch fails locally without touching
// the wire.
func TestOracleWatchOldServerUnsupported(t *testing.T) {
	db := newTestDB(t, routerTestConfig())
	clientEnd, serverEnd := net.Pipe()
	defer clientEnd.Close()
	defer serverEnd.Close()
	seen := preEpochServerStub(t, serverEnd, db)
	c := NewClient(clientEnd, WithLogger(nil))
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	h := c.OracleSync()
	if _, err := h.Watch(ctx); !errors.Is(err, ErrWatchUnsupported) {
		t.Fatalf("watch against old server: got %v, want ErrWatchUnsupported", err)
	}
	wire := len(seen())
	if _, err := h.Watch(ctx); !errors.Is(err, ErrWatchUnsupported) {
		t.Fatalf("second watch: got %v, want ErrWatchUnsupported", err)
	}
	if n := len(seen()); n != wire {
		t.Fatalf("second watch hit the wire (%d frames, was %d): rejection not sticky", n, wire)
	}
}

// TestOracleSyncV1Client: the v1 sequential protocol cannot carry
// subscriptions (no request IDs to route pushes), so Watch fails typed and
// locally; Sync still works through the legacy ladder, so v1 deployments
// keep their full oracle workflow.
func TestOracleSyncV1Client(t *testing.T) {
	db := newTestDB(t, routerTestConfig())
	if err := db.Ingest(context.Background(), randomBatch(rand.New(rand.NewSource(6)), 20)); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln, db)
	s.Log = nil
	t.Cleanup(func() { s.Close() })
	clientEnd, serverEnd := net.Pipe()
	go s.ServeConn(serverEnd)
	c := NewClientV1(clientEnd)
	defer c.Close()
	ctx := context.Background()

	h := c.OracleSync()
	if _, err := h.Watch(ctx); !errors.Is(err, ErrWatchUnsupported) {
		t.Fatalf("v1 watch: got %v, want ErrWatchUnsupported", err)
	}
	o, err := h.Sync(ctx)
	if err != nil {
		t.Fatalf("v1 sync: %v", err)
	}
	if !bytes.Equal(oracleBytes(t, o), oracleBytes(t, db.Oracle())) {
		t.Fatal("v1 sync diverged from the server oracle")
	}
}

// TestOracleWatchDeliversEpochBumps: a watch on a live server delivers the
// current state immediately (a stale handle updates without waiting for an
// ingest), then a synced update per epoch advance — coalescing bursts —
// with each delivered oracle byte-equal to a full fetch. Canceling the
// context closes the channel.
func TestOracleWatchDeliversEpochBumps(t *testing.T) {
	s := startVenueServer(t)
	c, err := Dial(s.Addr().String(), WithLogger(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rng := rand.New(rand.NewSource(8))
	if _, err := c.Ingest(ctx, randomBatch(rng, 10)); err != nil {
		t.Fatal(err)
	}

	h := c.OracleSync()
	updates, err := h.Watch(ctx)
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	// The subscription ack pushes the current version: the empty handle
	// must receive the initial state without any further ingest.
	first := recvUpdate(t, updates)
	if first.Err != nil || first.Oracle == nil {
		t.Fatalf("initial update = %+v", first)
	}

	// A burst of ingests: the watch must converge on the latest epoch
	// (intermediate versions may coalesce away).
	burst := 5
	for i := 0; i < burst; i++ {
		if _, err := c.Ingest(ctx, randomBatch(rng, 2)); err != nil {
			t.Fatal(err)
		}
	}
	var last OracleUpdate
	deadline := time.After(20 * time.Second)
	for {
		fresh, _, err := c.FetchOracle(ctx)
		if err != nil {
			t.Fatal(err)
		}
		wantEpoch, _ := s.db.OracleEpoch()
		if last.Oracle != nil && last.Epoch == wantEpoch {
			if !bytes.Equal(oracleBytes(t, last.Oracle), oracleBytes(t, fresh)) {
				t.Fatal("watched oracle differs from a full fetch at the same epoch")
			}
			break
		}
		select {
		case u := <-updates:
			if u.Err != nil {
				t.Fatalf("update error: %v", u.Err)
			}
			last = u
		case <-deadline:
			t.Fatalf("watch never reached epoch %d (last %d)", wantEpoch, last.Epoch)
		}
	}

	cancel()
	select {
	case _, open := <-updates:
		if open {
			// One in-flight update may race the cancel; the next receive
			// must observe the close.
			if _, open = <-updates; open {
				t.Fatal("update channel still open after cancel")
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("update channel not closed after cancel")
	}
}

func recvUpdate(t *testing.T, ch <-chan OracleUpdate) OracleUpdate {
	t.Helper()
	select {
	case u, ok := <-ch:
		if !ok {
			t.Fatal("update channel closed unexpectedly")
		}
		return u
	case <-time.After(20 * time.Second):
		t.Fatal("timed out waiting for an oracle update")
		return OracleUpdate{}
	}
}

// TestOracleSyncDenseChainNeverBeatsBlob: each ring record is sparse, but a
// long run of dense epochs can sum past one full snapshot — found by probing
// a live server after two whole wardrive passes, where the 15-epoch chain
// cost 2.4x the blob it replaced. The server must answer with whichever
// transfer is smaller.
func TestOracleSyncDenseChainNeverBeatsBlob(t *testing.T) {
	db, err := NewDatabase(DefaultDatabaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	if err := db.Ingest(ctx, randomBatch(rng, 1500)); err != nil {
		t.Fatal(err)
	}
	haveEpoch, haveInserts := db.OracleEpoch()
	held, err := db.Oracle().Clone()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := db.Ingest(ctx, randomBatch(rng, 1500)); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := db.OracleBlob()
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.OracleSyncSince(haveEpoch, haveInserts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unchanged {
		t.Fatal("stale version reported unchanged")
	}
	cost := len(res.Delta) + len(res.Blob)
	if cost > len(blob) {
		t.Fatalf("sync transfer %d B exceeds the %d B full blob (delta=%d blob=%d)",
			cost, len(blob), len(res.Delta), len(res.Blob))
	}
	// Whichever arm answered must still reconstruct byte-equal.
	var o *core.Oracle
	if res.Blob != nil {
		raw, err := codec.Gunzip(res.Blob)
		if err != nil {
			t.Fatal(err)
		}
		if o, err = core.Read(bytes.NewReader(raw)); err != nil {
			t.Fatal(err)
		}
	} else {
		recs, err := odelta.DecodeChain(res.Delta)
		if err != nil {
			t.Fatal(err)
		}
		if o, err = odelta.ApplyChain(held, recs); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(oracleBytes(t, o), oracleBytes(t, db.Oracle())) {
		t.Fatal("sync answer diverges from the live oracle")
	}
}
