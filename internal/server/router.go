package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"visualprint/internal/bloom"
	"visualprint/internal/core"
	"visualprint/internal/hash"
	"visualprint/internal/mathx"
	"visualprint/internal/obs"
	"visualprint/internal/pose"
	"visualprint/internal/sift"
	"visualprint/internal/track"
)

// Router fans requests out across venues and, within a venue, across spatial
// shards. It is the multi-tenant layer in front of the shard engines: every
// wire request optionally carries a venue name (msgVenueEx), the default
// venue (the empty name) maps to the plain Database the server was built
// with, and each named venue owns an isolated set of shard engines — its own
// LSH indexes, oracles, and WAL/snapshot directories. Venues are lazily
// created on first ingest (and on oracle fetch); querying a venue that was
// never ingested returns ErrEmptyDatabase, which is the cross-venue
// isolation guarantee the tests pin.
//
// Locate on a multi-shard venue is scatter-gather: every shard retrieves its
// per-keypoint candidate sets in parallel (CandidateSets), the router merges
// them under the venue-wide total order (DistSq, probe ordinal, ingest
// sequence) and runs the shared clustering/pose tail (solveCandidates). The
// merged candidate list is bit-identical to what one unsharded database
// holding the same mappings in the same ingest order would have produced —
// see MergeCand for the ordering argument and TestRouterLocateBitIdentical
// for the pinned proof. The one semantic difference is freshness, not
// ranking: a Locate racing an Ingest may observe a prefix of the batch
// (per-shard reads are not a venue-wide atomic snapshot); quiesced, the
// results are exact.
type Router struct {
	cfg DatabaseConfig
	def *Database // default venue ("")

	mu     sync.RWMutex
	venues map[string]*venue
	dir    string // venues root directory; "" while in-memory
	// pre maps venue names to configurations fixed before first ingest
	// (shard count, cell size); venues absent from the map get defaults.
	pre map[string]VenueConfig

	// Observability (nil until instrument): per-venue request counters are
	// created on this registry as venues appear.
	reg       *obs.Registry
	venueGage *obs.Gauge

	// trk is the continuous-localization session state (table + metrics;
	// see track.go). Always non-nil after NewRouter; swapped wholesale by
	// ConfigureTracking, read lock-free on the LocateSession hot path.
	trk atomic.Pointer[trackState]

	log *obs.Logger
}

// VenueConfig fixes a venue's shard topology. It is immutable once the venue
// exists — resharding is a future roadmap item — and persisted in the
// venue's meta.json so recovery rebuilds the same topology.
type VenueConfig struct {
	// Shards is the number of shard engines the venue's mappings are
	// partitioned across (minimum 1).
	Shards int `json:"shards"`
	// CellSize is the edge length of the spatial cells mappings are hashed
	// by before the cell is assigned to a shard. Defaults to
	// DefaultVenueCellSize. Cells, not raw positions, are the partition key
	// so co-located features land on the same shard and per-shard WAL
	// batches stay coherent; correctness never depends on it (the merge
	// order is position-agnostic).
	CellSize float64 `json:"cell_size"`
}

// DefaultVenueCellSize is the default spatial cell edge (meters in the
// simulated venues) — a few times the clustering epsilon, so one consensus
// cluster usually lives in O(1) cells.
const DefaultVenueCellSize = 4.0

func (vc VenueConfig) withDefaults() VenueConfig {
	if vc.Shards <= 0 {
		vc.Shards = 1
	}
	if vc.CellSize <= 0 {
		vc.CellSize = DefaultVenueCellSize
	}
	return vc
}

// venue is one named tenant: its shard engines plus the sequence counter
// that stamps venue-wide ingest order onto every mapping.
type venue struct {
	name   string
	cfg    VenueConfig
	shards []*Database

	// ingestMu serializes ingests venue-wide: sequence assignment and the
	// per-shard applies happen under it, so every shard observes a strictly
	// increasing subsequence of the venue sequence (IngestSeq's contract).
	ingestMu sync.Mutex
	nextSeq  uint64

	// Per-venue counters (nil without observability).
	locates *obs.Counter
	ingests *obs.Counter
}

// NewRouter builds a router over def as the default venue. Named venues are
// created lazily with def's configuration.
func NewRouter(def *Database, cfg DatabaseConfig) *Router {
	r := &Router{
		cfg:    cfg,
		def:    def,
		venues: make(map[string]*venue),
		pre:    make(map[string]VenueConfig),
	}
	r.trk.Store(&trackState{tb: track.New(track.DefaultConfig())})
	return r
}

// SetLogger routes venue lifecycle messages through l (nil silences).
func (r *Router) SetLogger(l *obs.Logger) {
	if l == nil {
		l = obs.Discard
	}
	r.mu.Lock()
	r.log = l
	r.mu.Unlock()
}

func (r *Router) logf(format string, args ...any) {
	r.mu.RLock()
	l := r.log
	r.mu.RUnlock()
	if l != nil {
		l.Infof(format, args...)
	}
}

// ConfigureVenue fixes the shard topology a venue will be created with. It
// must run before the venue's first ingest (or before OpenVenues recovers
// it); configuring an already-created venue returns an error, since live
// resharding is not supported.
func (r *Router) ConfigureVenue(name string, cfg VenueConfig) error {
	if !validVenueName(name) {
		return fmt.Errorf("server: invalid venue name %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.venues[name]; ok {
		return fmt.Errorf("server: venue %q already exists; resharding is not supported", name)
	}
	r.pre[name] = cfg.withDefaults()
	return nil
}

// Default returns the default venue's database.
func (r *Router) Default() *Database { return r.def }

// Venues returns the sorted names of all live named venues.
func (r *Router) Venues() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.venues))
	for n := range r.venues {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// instrument attaches the server registry; venues created afterwards get
// per-venue request counters (venue_<name>_locates / _ingests), and the
// venues gauge tracks the live venue count.
func (r *Router) instrument(reg *obs.Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.reg != nil || reg == nil {
		return
	}
	r.reg = reg
	r.venueGage = reg.Gauge("venues")
	for _, v := range r.venues {
		v.locates = reg.Counter("venue_" + v.name + "_locates")
		v.ingests = reg.Counter("venue_" + v.name + "_ingests")
	}
	r.venueGage.Set(int64(len(r.venues)))
	// Re-publish the tracking state with instruments attached (the table's
	// session gauge starts at the current — normally zero — count).
	if st := r.trk.Load(); st != nil {
		ns := &trackState{tb: st.tb, tm: newTrackMetrics(reg)}
		ns.tb.Instrument(reg)
		r.trk.Store(ns)
	}
}

// venueMetaFile is the per-venue topology record inside the venue directory.
const venueMetaFile = "meta.json"

// venuesSubdir is the directory under the server data dir holding one
// subdirectory per named venue. The default venue keeps the legacy layout at
// the data dir root, so pre-venue data directories open unchanged.
const venuesSubdir = "venues"

// shardDirName names shard i's store directory inside a venue directory.
func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// OpenVenues attaches dir as the venues root: every venue recorded under
// dir/venues is recovered (topology from meta.json, each shard from its own
// store directory, the venue sequence counter from the shards' high-water
// marks), and venues created later are durable under the same root. The
// default venue's own directory is managed separately by Database.Open.
func (r *Router) OpenVenues(dir string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dir != "" {
		return errors.New("server: router already has a venues directory")
	}
	if len(r.venues) != 0 {
		return errors.New("server: OpenVenues requires no live venues")
	}
	root := filepath.Join(dir, venuesSubdir)
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			r.dir = dir
			return nil
		}
		return err
	}
	for _, e := range entries {
		if !e.IsDir() || !validVenueName(e.Name()) {
			continue
		}
		name := e.Name()
		meta, err := os.ReadFile(filepath.Join(root, name, venueMetaFile))
		if err != nil {
			return fmt.Errorf("server: venue %q: %w", name, err)
		}
		var vc VenueConfig
		if err := json.Unmarshal(meta, &vc); err != nil {
			return fmt.Errorf("server: venue %q meta: %w", name, err)
		}
		v, err := r.buildVenueLocked(name, vc.withDefaults(), filepath.Join(root, name))
		if err != nil {
			return err
		}
		r.venues[name] = v
	}
	r.dir = dir
	if r.venueGage != nil {
		r.venueGage.Set(int64(len(r.venues)))
	}
	return nil
}

// buildVenueLocked constructs a venue's shard engines, attaching durable
// stores when venueDir is non-empty. Callers hold r.mu.
func (r *Router) buildVenueLocked(name string, vc VenueConfig, venueDir string) (*venue, error) {
	v := &venue{name: name, cfg: vc}
	for i := 0; i < vc.Shards; i++ {
		sh, err := NewShardDatabase(r.cfg)
		if err != nil {
			return nil, err
		}
		if venueDir != "" {
			if err := sh.Open(filepath.Join(venueDir, shardDirName(i))); err != nil {
				for _, prev := range v.shards {
					prev.Close()
				}
				return nil, fmt.Errorf("server: venue %q shard %d: %w", name, i, err)
			}
		}
		v.shards = append(v.shards, sh)
	}
	for _, sh := range v.shards {
		if s := sh.MaxSeq(); s >= v.nextSeq {
			v.nextSeq = s + 1
		}
	}
	if v.nextSeq == 0 {
		v.nextSeq = 1
	}
	if r.reg != nil {
		v.locates = r.reg.Counter("venue_" + name + "_locates")
		v.ingests = r.reg.Counter("venue_" + name + "_ingests")
	}
	return v, nil
}

// lookup returns a live venue, or nil when it was never created.
func (r *Router) lookup(name string) *venue {
	r.mu.RLock()
	v := r.venues[name]
	r.mu.RUnlock()
	return v
}

// getOrCreate returns the named venue, creating it (with its preconfigured
// or default topology, durable when a venues root is attached) on first use.
func (r *Router) getOrCreate(name string) (*venue, error) {
	if v := r.lookup(name); v != nil {
		return v, nil
	}
	if !validVenueName(name) {
		return nil, fmt.Errorf("server: invalid venue name %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.venues[name]; ok {
		return v, nil
	}
	vc, ok := r.pre[name]
	if !ok {
		vc = VenueConfig{}.withDefaults()
	}
	venueDir := ""
	if r.dir != "" {
		venueDir = filepath.Join(r.dir, venuesSubdir, name)
		if err := os.MkdirAll(venueDir, 0o755); err != nil {
			return nil, err
		}
		meta, err := json.Marshal(vc)
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(filepath.Join(venueDir, venueMetaFile), meta, 0o644); err != nil {
			return nil, err
		}
	}
	v, err := r.buildVenueLocked(name, vc, venueDir)
	if err != nil {
		return nil, err
	}
	r.venues[name] = v
	if r.venueGage != nil {
		r.venueGage.Set(int64(len(r.venues)))
	}
	// r.mu is held: read r.log directly instead of via logf.
	if r.log != nil {
		r.log.Infof("server: venue %q created (%d shard(s))", name, vc.Shards)
	}
	return v, nil
}

// Close releases every named venue's durable resources. The default venue's
// database is owned by the caller and left untouched.
func (r *Router) Close() error {
	r.mu.Lock()
	venues := r.venues
	r.venues = make(map[string]*venue)
	r.dir = ""
	r.mu.Unlock()
	var first error
	for _, v := range venues {
		for _, sh := range v.shards {
			if err := sh.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Compact folds every named venue's shards into fresh durable snapshots
// (in-memory shards are skipped). The default venue is compacted by its
// owner.
func (r *Router) Compact() error {
	r.mu.RLock()
	var shards []*Database
	for _, v := range r.venues {
		shards = append(shards, v.shards...)
	}
	r.mu.RUnlock()
	for _, sh := range shards {
		sh.mu.RLock()
		st := sh.store
		sh.mu.RUnlock()
		if st == nil {
			continue
		}
		if err := sh.Compact(); err != nil {
			return err
		}
	}
	return nil
}

// shardFor hashes a mapping's spatial cell to a shard index.
func (v *venue) shardFor(p mathx.Vec3) int {
	if len(v.shards) == 1 {
		return 0
	}
	cs := v.cfg.CellSize
	var buf [12]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(int32(math.Floor(p.X/cs))))
	binary.LittleEndian.PutUint32(buf[4:], uint32(int32(math.Floor(p.Y/cs))))
	binary.LittleEndian.PutUint32(buf[8:], uint32(int32(math.Floor(p.Z/cs))))
	return int(hash.Sum64(buf[:], 0x5eed) % uint64(len(v.shards)))
}

// Len returns a venue's total mapping count (0 for a venue never created).
func (r *Router) Len(venueName string) int {
	if venueName == "" {
		return r.def.Len()
	}
	v := r.lookup(venueName)
	if v == nil {
		return 0
	}
	return v.len()
}

func (v *venue) len() int {
	n := 0
	for _, sh := range v.shards {
		n += sh.Len()
	}
	return n
}

// Ingest routes a batch to a venue, creating it on first use, and returns
// the venue's total mapping count after the batch. Within a named venue,
// every mapping is stamped with the next venue-global sequence number and
// routed to the shard owning its spatial cell; the whole batch is applied
// under the venue's ingest lock so each shard sees sequence numbers in
// order. The shard applies fan out in parallel — each shard fsyncs its own
// WAL — and the call returns once every shard has acknowledged.
func (r *Router) Ingest(ctx context.Context, venueName string, ms []Mapping) (total int, err error) {
	if venueName == "" {
		if err := r.def.Ingest(ctx, ms); err != nil {
			return 0, err
		}
		return r.def.Len(), nil
	}
	v, err := r.getOrCreate(venueName)
	if err != nil {
		return 0, err
	}
	if v.ingests != nil {
		v.ingests.Inc()
	}
	v.ingestMu.Lock()
	defer v.ingestMu.Unlock()
	perMs := make([][]Mapping, len(v.shards))
	perSeq := make([][]uint64, len(v.shards))
	for i := range ms {
		si := v.shardFor(ms[i].Pos)
		perMs[si] = append(perMs[si], ms[i])
		perSeq[si] = append(perSeq[si], v.nextSeq)
		v.nextSeq++
	}
	var wg sync.WaitGroup
	errs := make([]error, len(v.shards))
	for si := range v.shards {
		if len(perMs[si]) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			errs[si] = v.shards[si].IngestSeq(ctx, perMs[si], perSeq[si])
		}(si)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return 0, e
		}
	}
	return v.len(), nil
}

// Locate answers a localization query against a venue. A venue that was
// never ingested (or the empty default database) returns ErrEmptyDatabase.
// Single-shard venues delegate to the shard's own Locate; multi-shard venues
// run the scatter-gather merge documented on Router.
func (r *Router) Locate(ctx context.Context, venueName string, kps []sift.Keypoint, intr pose.Intrinsics) (LocateResult, error) {
	if venueName == "" {
		return r.def.Locate(ctx, kps, intr)
	}
	v := r.lookup(venueName)
	if v == nil {
		return LocateResult{}, ErrEmptyDatabase
	}
	if v.locates != nil {
		v.locates.Inc()
	}
	if len(v.shards) == 1 {
		return v.shards[0].Locate(ctx, kps, intr)
	}
	res, _, err := r.locateSharded(ctx, v, kps, intr, nil)
	return res, err
}

// locateSharded is the scatter-gather Locate: per-shard candidate retrieval
// in parallel, merge under the venue total order, shared solve tail. A
// non-nil ws threads a session prior into the tail (warm solve with cold
// fallback — "router affinity": the prior applies after the shard fan-out
// merge, so any shard topology reuses it); the bool reports warm
// acceptance and is always false when ws is nil.
func (r *Router) locateSharded(ctx context.Context, v *venue, kps []sift.Keypoint, intr pose.Intrinsics, ws *warmSolve) (LocateResult, bool, error) {
	if v.len() == 0 {
		return LocateResult{}, false, ErrEmptyDatabase
	}
	if err := ctx.Err(); err != nil {
		return LocateResult{}, false, ctxError(err)
	}
	t0 := time.Now()
	sets := make([][][]MergeCand, len(v.shards))
	errs := make([]error, len(v.shards))
	var wg sync.WaitGroup
	for si := range v.shards {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sets[si], errs[si] = v.shards[si].CandidateSets(ctx, kps)
		}(si)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return LocateResult{}, false, e
		}
	}
	// Merge per keypoint: concatenate the shard sets, restore the venue
	// total order, truncate to the single-database candidate cap, then gate
	// on descriptor distance — the same truncate-then-gate sequence as
	// Database.candidatesFor, in the same order.
	n := r.cfg.NeighborsPerKeypoint
	var cands []locateCand
	var merged []MergeCand
	for k := range kps {
		merged = merged[:0]
		for si := range sets {
			merged = append(merged, sets[si][k]...)
		}
		sort.Slice(merged, func(i, j int) bool { return compareMergeCands(merged[i], merged[j]) < 0 })
		if n > 0 && len(merged) > n {
			merged = merged[:n]
		}
		for _, c := range merged {
			if r.cfg.MaxMatchDistSq > 0 && c.DistSq > r.cfg.MaxMatchDistSq {
				continue
			}
			cands = append(cands, locateCand{px: kps[k].X, py: kps[k].Y, p: c.Pos})
		}
	}
	// Union of per-shard bounds == the unsharded database's bounds
	// (per-axis min/max commute across any partition of the mappings).
	var lo, hi mathx.Vec3
	have := false
	for _, sh := range v.shards {
		slo, shi, ok := sh.Bounds()
		if !ok {
			continue
		}
		if !have {
			lo, hi, have = slo, shi, true
			continue
		}
		lo.X, lo.Y, lo.Z = math.Min(lo.X, slo.X), math.Min(lo.Y, slo.Y), math.Min(lo.Z, slo.Z)
		hi.X, hi.Y, hi.Z = math.Max(hi.X, shi.X), math.Max(hi.Y, shi.Y), math.Max(hi.Z, shi.Z)
	}
	m := r.def.metrics()
	tr := m.trace.Begin("locate")
	tr.StageSince(obs.StageLSHQuery, t0)
	var res LocateResult
	var warm bool
	var err error
	if ws != nil {
		res, warm, err = solveWarmThenCold(ctx, r.cfg, cands, lo, hi, intr, tr, *ws)
	} else {
		res, err = solveCandidates(ctx, r.cfg, cands, lo, hi, intr, tr)
	}
	m.locateNs.Observe(m.trace.End(tr))
	m.locates.Inc()
	if err != nil {
		m.locateErrors.Inc()
	}
	return res, warm, err
}

// OracleBlob serializes a venue's uniqueness oracle, gzip-compressed. A
// multi-shard venue's oracle is assembled by merging per-shard oracle clones
// (core.Merge) — bitwise identical to an unsharded oracle over the same
// inserts, because counting filters add with saturation and the verification
// filter ORs. Fetching the oracle of a venue that does not exist yet creates
// it, so a wardriver can download-before-first-upload like on the default
// venue.
func (r *Router) OracleBlob(venueName string) ([]byte, error) {
	if venueName == "" {
		return r.def.OracleBlob()
	}
	v, err := r.getOrCreate(venueName)
	if err != nil {
		return nil, err
	}
	if len(v.shards) == 1 {
		return v.shards[0].OracleBlob()
	}
	merged, err := v.shards[0].OracleClone()
	if err != nil {
		return nil, err
	}
	for _, sh := range v.shards[1:] {
		clone, err := sh.OracleClone()
		if err != nil {
			return nil, err
		}
		if err := core.Merge(merged, clone); err != nil {
			return nil, err
		}
	}
	return bloom.GzipBytes(merged)
}

// OracleDiff serves an incremental oracle refresh for a venue. Single-shard
// venues keep the full diff machinery; multi-shard venues report the version
// unavailable (ok=false), and the dispatch layer falls back to a full
// OracleBlob — the assembled oracle has no per-version snapshot window to
// diff against. Venues that do not exist report ok=false the same way.
func (r *Router) OracleDiff(venueName string, sinceInserts uint64) (diff []byte, ok bool, err error) {
	if venueName == "" {
		return r.def.OracleDiff(sinceInserts)
	}
	v := r.lookup(venueName)
	if v == nil || len(v.shards) > 1 {
		return nil, false, nil
	}
	return v.shards[0].OracleDiff(sinceInserts)
}

// OracleInserts returns a venue's oracle insert count: the per-shard sum,
// which equals the merged oracle's counter (core.Merge adds the counts the
// same way). A venue that does not exist reports 0 — consistent with the
// empty oracle a client would have downloaded.
func (r *Router) OracleInserts(venueName string) uint64 {
	if venueName == "" {
		return r.def.OracleInserts()
	}
	v := r.lookup(venueName)
	if v == nil {
		return 0
	}
	var n uint64
	for _, sh := range v.shards {
		n += sh.OracleInserts()
	}
	return n
}

// oracleEpoch sums the shard version identities. Both coordinates are
// monotonic per shard, so the sums are monotonic venue-wide — the property
// the unchanged check needs. The sum can be torn across shards under a
// concurrent ingest; callers tolerate that by reading it before any oracle
// snapshot (a stale cited version only costs the client an extra sync).
func (v *venue) oracleEpoch() (epoch, inserts uint64) {
	for _, sh := range v.shards {
		e, i := sh.OracleEpoch()
		epoch += e
		inserts += i
	}
	return epoch, inserts
}

// OracleSyncSince answers a versioned oracle sync for a venue. Single-shard
// venues delegate to the shard engine's delta ring; a multi-shard venue has
// no single delta history (its oracle is assembled per request), so it is
// versioned by the shard sums and served unchanged-or-full. Like
// OracleBlob, syncing a venue that does not exist yet creates it.
func (r *Router) OracleSyncSince(venueName string, haveEpoch, haveInserts uint64) (OracleSyncResult, error) {
	if venueName == "" {
		return r.def.OracleSyncSince(haveEpoch, haveInserts)
	}
	v, err := r.getOrCreate(venueName)
	if err != nil {
		return OracleSyncResult{}, err
	}
	if len(v.shards) == 1 {
		return v.shards[0].OracleSyncSince(haveEpoch, haveInserts)
	}
	// Read the version before assembling the blob: an ingest racing the
	// clones can only make the blob newer than the stamped version, which a
	// later sync repairs — stamping newer than the blob would instead let
	// the unchanged check strand a stale client.
	epoch, inserts := v.oracleEpoch()
	res := OracleSyncResult{Epoch: epoch, Inserts: inserts}
	if haveEpoch == epoch && haveInserts == inserts {
		res.Unchanged = true
		return res, nil
	}
	blob, err := r.OracleBlob(venueName)
	if err != nil {
		return OracleSyncResult{}, err
	}
	res.Blob = blob
	return res, nil
}

// VenueEpochSignal returns a venue's version identity plus a channel closed
// by the next epoch bump after it (see Database.EpochSignal for the
// no-missed-wakeup argument). A multi-shard venue merges the per-shard
// signals through funnel goroutines; stop bounds their lifetime — pass the
// subscriber's cancellation so an idle venue doesn't accumulate them.
func (r *Router) VenueEpochSignal(venueName string, stop <-chan struct{}) (epoch, inserts uint64, ch <-chan struct{}, err error) {
	if venueName == "" {
		e, i, c := r.def.EpochSignal()
		return e, i, c, nil
	}
	v, err := r.getOrCreate(venueName)
	if err != nil {
		return 0, 0, nil, err
	}
	if len(v.shards) == 1 {
		e, i, c := v.shards[0].EpochSignal()
		return e, i, c, nil
	}
	merged := make(chan struct{})
	var once sync.Once
	for _, sh := range v.shards {
		e, i, c := sh.EpochSignal()
		epoch += e
		inserts += i
		go func(c <-chan struct{}) {
			select {
			case <-c:
				once.Do(func() { close(merged) })
			case <-stop:
			case <-merged: // another shard fired; don't park on a quiet one
			}
		}(c)
	}
	return epoch, inserts, merged, nil
}

// Stats aggregates a venue's shard stats. A venue that does not exist
// reports zeros (consistent with Len).
func (r *Router) Stats(venueName string) DBStats {
	if venueName == "" {
		return r.def.Stats()
	}
	v := r.lookup(venueName)
	if v == nil {
		return DBStats{}
	}
	var agg DBStats
	for _, sh := range v.shards {
		s := sh.Stats()
		agg.Mappings += s.Mappings
		agg.DatabaseBytes += s.DatabaseBytes
		agg.OracleInserts += s.OracleInserts
		agg.OracleSnapshotBytes += s.OracleSnapshotBytes
		agg.WALBytes += s.WALBytes
		if s.Persistent {
			agg.Persistent = true
		}
		if s.SnapshotSeq > agg.SnapshotSeq {
			agg.SnapshotSeq = s.SnapshotSeq
		}
		if s.LastCompactionUnix > agg.LastCompactionUnix {
			agg.LastCompactionUnix = s.LastCompactionUnix
		}
	}
	return agg
}
