package server

// Continuous localization sessions: the server-side tracking layer that
// turns repeat Locates from one device into warm solves.
//
// A client that localizes continuously (an AR session walking a venue)
// attaches a random non-zero session ID to its queries (msgSessionEx). The
// Router keeps a bounded, TTL-evicted table of recent fixes per session
// (internal/track) and, when a new query arrives for a known session,
// predicts the camera position with a constant-velocity model and hands
// the DE pose solver a prior: a shrunk search box around the prediction,
// one population member pinned to it, and an absolute early-convergence
// stop. Accepted warm solves converge in a fraction of the cold solve's
// generations. A residual gate guards against a wrong prior (tracking
// loss, teleport, venue re-entry): if the warm solve's mean residual is
// above the acceptance threshold, the query is re-solved cold over the
// same gathered candidates — bit-identical to what a session-less Locate
// would have returned (pinned by TestLocateSessionRejectedPriorBitIdentical).
//
// Warm-solve *errors* are returned without a cold retry: every error the
// solve tail can produce (ErrTooFewMatches, clustering failure,
// ErrNoConsensus, context cancellation) fires before the pose options are
// consulted, so the cold solve would fail identically.

import (
	"context"
	"math"
	"time"

	"visualprint/internal/hash"
	"visualprint/internal/mathx"
	"visualprint/internal/obs"
	"visualprint/internal/pose"
	"visualprint/internal/sift"
	"visualprint/internal/track"
)

// warmSolve carries a session's prior into the solve tail.
type warmSolve struct {
	// opt is the warm-start pose option set (prior position/radius and the
	// early-convergence stop layered onto the cold options).
	opt pose.Options
	// accept is the residual gate (mean radians per pair): a warm solve
	// above it is discarded and the query re-solved cold.
	accept float64
}

// warmPoseOptions layers a session prior onto the cold pose options: the
// shrunk search box around the prediction, the warm population-convergence
// tolerance (tighter than cold by default — polish is cheap inside the
// box), and an absolute early stop scaled from the session's best retained
// residual — set below it (WarmStopFactor < 1), so it fires only when the
// solve is clearly better than every recent fix and cannot ratchet error
// along a trajectory; WarmMinResidual floors it for near-perfect corpora.
func warmPoseOptions(cold pose.Options, p track.Prior, tcfg track.Config) pose.Options {
	cold.PriorPos = p.Pos
	cold.PriorRadius = p.Radius
	cold.MinResidual = math.Max(tcfg.WarmMinResidual, p.Residual*tcfg.WarmStopFactor)
	if tcfg.WarmTol > 0 {
		cold.Tol = tcfg.WarmTol
	}
	return cold
}

// warmAccept computes the residual acceptance gate for a prior: at least
// the configured floor, at least the session's best retained residual
// with slack.
func warmAccept(p track.Prior, tcfg track.Config) float64 {
	return math.Max(tcfg.AcceptResidual, p.Residual*tcfg.AcceptFactor)
}

// trackMetrics is the Router's session-tracking instrument set. The zero
// value (all nil) is a no-op via obs's nil-receiver safety, so the hot
// path records unconditionally.
type trackMetrics struct {
	warm     *obs.Counter // accepted warm solves
	cold     *obs.Counter // session queries solved cold (no prior, or rejected)
	rejected *obs.Counter // priors that failed the residual gate
	warmGens *obs.Histogram
	coldGens *obs.Histogram
	// priorErrMM records |predicted - solved| in millimeters — the motion
	// model's accuracy as seen by accepted and rejected priors alike.
	priorErrMM *obs.Histogram
}

// trackState bundles the session table with its metrics so both swap
// atomically under ConfigureTracking / instrument.
type trackState struct {
	tb *track.Table
	tm trackMetrics
}

// Database.locateWarm is Locate with a session prior: candidates are
// gathered once, the warm solve runs first, and a rejected prior falls
// back to the cold solve over the same candidate list (bit-identical to
// plain Locate on this view). The bool reports warm acceptance.
func (db *Database) locateWarm(ctx context.Context, kps []sift.Keypoint, intr pose.Intrinsics, ws warmSolve) (LocateResult, bool, error) {
	v, t := db.pinView()
	defer db.unpin(v, t)
	m := db.metrics()
	tr := m.trace.Begin("locate")
	res, warm, err := db.locateViewWarm(ctx, v, kps, intr, tr, ws)
	m.locateNs.Observe(m.trace.End(tr))
	m.locates.Inc()
	if err != nil {
		m.locateErrors.Inc()
	}
	return res, warm, err
}

func (db *Database) locateViewWarm(ctx context.Context, v *dbView, kps []sift.Keypoint, intr pose.Intrinsics, tr *obs.Trace, ws warmSolve) (LocateResult, bool, error) {
	if len(v.positions) == 0 {
		return LocateResult{}, false, ErrEmptyDatabase
	}
	if err := ctx.Err(); err != nil {
		return LocateResult{}, false, ctxError(err)
	}
	t0 := time.Now()
	cands, err := db.gatherCandidates(ctx, v, kps)
	tr.StageSince(obs.StageLSHQuery, t0)
	if err != nil {
		return LocateResult{}, false, ctxError(err)
	}
	return solveWarmThenCold(ctx, db.cfg, cands, v.lo, v.hi, intr, tr, ws)
}

// solveWarmThenCold runs the warm solve, gates it, and re-solves cold over
// the same candidates when the prior is rejected.
func solveWarmThenCold(ctx context.Context, cfg DatabaseConfig, cands []locateCand, lo, hi mathx.Vec3, intr pose.Intrinsics, tr *obs.Trace, ws warmSolve) (LocateResult, bool, error) {
	res, err := solveCandidatesOpt(ctx, cfg, cands, lo, hi, intr, tr, ws.opt)
	if err != nil {
		// Prior-independent failure (see package comment): cold would fail
		// the same way, so don't burn a second solve.
		return res, false, err
	}
	if ws.accept <= 0 || res.Residual <= ws.accept {
		return res, true, nil
	}
	// Rejected prior: the cold re-solve consumes exactly the session-less
	// inputs (same candidates, bounds, cfg.Pose), so the result is
	// bit-identical to plain Locate on the same view.
	res, err = solveCandidates(ctx, cfg, cands, lo, hi, intr, tr)
	return res, false, err
}

// sessionKey folds the venue name into the wire session ID so the same
// device ID tracked in two venues keeps two independent histories.
func sessionKey(venueName string, sid uint64) uint64 {
	if venueName == "" {
		return sid
	}
	return sid ^ hash.Sum64([]byte(venueName), 0x7a5e)
}

// trackStatePtr returns the router's current tracking state (never nil
// after NewRouter).
func (r *Router) trackState() *trackState {
	return r.trk.Load()
}

// ConfigureTracking replaces the router's session table with one built
// from cfg. Call it before serving: queries racing the swap may observe
// either table, and sessions recorded in the old one are forgotten.
func (r *Router) ConfigureTracking(cfg track.Config) {
	st := &trackState{tb: track.New(cfg)}
	r.mu.Lock()
	if r.reg != nil {
		st.tb.Instrument(r.reg)
		st.tm = newTrackMetrics(r.reg)
	}
	r.trk.Store(st)
	r.mu.Unlock()
}

func newTrackMetrics(reg *obs.Registry) trackMetrics {
	return trackMetrics{
		warm:       reg.Counter("track_warm"),
		cold:       reg.Counter("track_cold"),
		rejected:   reg.Counter("track_prior_rejected"),
		warmGens:   reg.Histogram("track_warm_generations"),
		coldGens:   reg.Histogram("track_cold_generations"),
		priorErrMM: reg.Histogram("track_prior_error_mm"),
	}
}

// LocateSession is Locate with continuous-localization tracking: sid == 0
// is exactly Locate (no session state is read or written); a non-zero sid
// looks up the session's motion-model prior, warm-starts the pose solve
// with it, and records the accepted fix back into the session history.
func (r *Router) LocateSession(ctx context.Context, venueName string, sid uint64, kps []sift.Keypoint, intr pose.Intrinsics) (LocateResult, error) {
	if sid == 0 {
		return r.Locate(ctx, venueName, kps, intr)
	}
	st := r.trackState()
	now := time.Now()
	key := sessionKey(venueName, sid)
	prior, havePrior := st.tb.Predict(key, now)
	var ws *warmSolve
	if havePrior {
		tcfg := st.tb.Config()
		ws = &warmSolve{
			opt:    warmPoseOptions(r.cfg.Pose, prior, tcfg),
			accept: warmAccept(prior, tcfg),
		}
	}
	res, warm, err := r.locateMaybeWarm(ctx, venueName, kps, intr, ws)
	if err != nil {
		return res, err
	}
	st.tb.Observe(key, res.Position, res.Yaw, res.Residual, now)
	if havePrior {
		st.tm.priorErrMM.Observe(int64(prior.Pos.Dist(res.Position) * 1000))
	}
	if warm {
		st.tm.warm.Inc()
		st.tm.warmGens.Observe(int64(res.Generations))
	} else {
		st.tm.cold.Inc()
		st.tm.coldGens.Observe(int64(res.Generations))
		if havePrior {
			st.tm.rejected.Inc()
		}
	}
	return res, nil
}

// EnableTrackingObs instruments the router — venue gauges plus the
// tracking subsystem's counters and histograms — on the default
// database's registry, enabling observability if nothing has yet, and
// returns the registry. Serve does this automatically for networked
// servers; in-process users (benchmarks, library embedders) opt in here.
func (r *Router) EnableTrackingObs() *obs.Registry {
	reg := r.def.EnableObs()
	r.instrument(reg)
	return reg
}

// TrackingStats is a point-in-time report of the session-tracking
// subsystem: solve-outcome counters and the live session count. The
// counters read zero until the router is instrumented (Serve does it;
// in-process, EnableTrackingObs).
type TrackingStats struct {
	// Warm counts session queries answered by an accepted warm-started
	// solve; Cold counts full solves (no prior, or sid 0 never counts);
	// Rejected counts warm solves that failed the residual gate and were
	// re-run cold (a subset of Cold).
	Warm, Cold, Rejected uint64
	// Sessions is the number of live tracked sessions.
	Sessions int
}

// TrackingStats reports the tracking subsystem's current counters.
func (r *Router) TrackingStats() TrackingStats {
	st := r.trackState()
	return TrackingStats{
		Warm:     st.tm.warm.Value(),
		Cold:     st.tm.cold.Value(),
		Rejected: st.tm.rejected.Value(),
		Sessions: st.tb.Len(),
	}
}

// EndSession drops a session's tracking state (the client told us it is
// done; the table would TTL it out anyway).
func (r *Router) EndSession(venueName string, sid uint64) {
	if sid == 0 {
		return
	}
	r.trackState().tb.Forget(sessionKey(venueName, sid))
}

// locateMaybeWarm dispatches like Locate but threads an optional warm
// solve through to the shared tail. ws == nil is exactly Locate's routing.
func (r *Router) locateMaybeWarm(ctx context.Context, venueName string, kps []sift.Keypoint, intr pose.Intrinsics, ws *warmSolve) (LocateResult, bool, error) {
	if venueName == "" {
		if ws == nil {
			res, err := r.def.Locate(ctx, kps, intr)
			return res, false, err
		}
		return r.def.locateWarm(ctx, kps, intr, *ws)
	}
	v := r.lookup(venueName)
	if v == nil {
		return LocateResult{}, false, ErrEmptyDatabase
	}
	if v.locates != nil {
		v.locates.Inc()
	}
	if len(v.shards) == 1 {
		if ws == nil {
			res, err := v.shards[0].Locate(ctx, kps, intr)
			return res, false, err
		}
		return v.shards[0].locateWarm(ctx, kps, intr, *ws)
	}
	return r.locateSharded(ctx, v, kps, intr, ws)
}
