package server

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"visualprint/internal/obs"
	"visualprint/internal/pose"
	"visualprint/internal/scene"
	"visualprint/internal/sift"
)

// persistTestConfig shrinks the compaction threshold so tests exercise the
// background snapshotter without megabytes of ingest.
func persistTestConfig() DatabaseConfig {
	cfg := DefaultDatabaseConfig()
	cfg.WALCompactBytes = 1 << 20
	// The pose optimizer is an anytime search: its wall-clock deadline makes
	// the iteration count timing-dependent. Bit-identical recovery checks
	// need Locate to be a pure function of database state, so run the
	// optimizer to its fixed iteration budget instead.
	cfg.Pose.Deadline = 0
	return cfg
}

func newTestDB(t testing.TB, cfg DatabaseConfig) *Database {
	t.Helper()
	db, err := NewDatabase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db.SetLogger(obs.FuncLogger(t.Logf))
	return db
}

// queryKeypoints renders one viewpoint of the venue and extracts keypoints
// for Locate.
func queryKeypoints(t testing.TB, w *scene.World) ([]sift.Keypoint, pose.Intrinsics) {
	t.Helper()
	poi := w.POIsOfKind(scene.POIUnique)
	if len(poi) == 0 {
		t.Fatal("venue has no unique POIs")
	}
	cam := scene.CameraFacing(w, poi[0], 3.0, 0.2, -0.05, 200, 150)
	fr, err := scene.Render(w, cam)
	if err != nil {
		t.Fatal(err)
	}
	sc := sift.DefaultConfig()
	sc.ContrastThreshold = 0.02
	kps := sift.Detect(fr.Image, sc)
	if len(kps) < 20 {
		t.Fatalf("only %d query keypoints", len(kps))
	}
	return kps, IntrinsicsForTest(cam)
}

// locateBoth runs the same query on two databases and requires bit-equal
// answers (including equal failures).
func requireIdenticalLocate(t *testing.T, a, b *Database, kps []sift.Keypoint, intr pose.Intrinsics) {
	t.Helper()
	ra, errA := a.Locate(context.Background(), kps, intr)
	rb, errB := b.Locate(context.Background(), kps, intr)
	if (errA == nil) != (errB == nil) || (errA != nil && errA.Error() != errB.Error()) {
		t.Fatalf("locate errors diverge: %v vs %v", errA, errB)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("locate results diverge:\n pre-crash: %+v\n recovered: %+v", ra, rb)
	}
	if errA == nil && ra.Matched == 0 {
		t.Fatal("locate matched nothing; test venue too weak to be meaningful")
	}
}

// TestKillAndRestartRecoversIdenticalMap is the headline crash test: ingest
// a venue, drop the process state without any shutdown courtesy (the
// database object is simply abandoned, as a SIGKILL would), reopen the
// directory, and require Locate to answer bit-identically.
func TestKillAndRestartRecoversIdenticalMap(t *testing.T) {
	if testing.Short() {
		t.Skip("wardriving a venue is slow")
	}
	dir := t.TempDir()
	w := testVenue()
	ms := wardriveMappings(t, w)
	kps, intr := queryKeypoints(t, w)

	db1 := newTestDB(t, persistTestConfig())
	if err := db1.Open(dir); err != nil {
		t.Fatal(err)
	}
	// Several batches so the WAL carries multiple records.
	for i := 0; i < len(ms); i += 700 {
		end := i + 700
		if end > len(ms) {
			end = len(ms)
		}
		if err := db1.Ingest(context.Background(), ms[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	// NO Close, NO Compact: every acknowledged ingest must already be on
	// disk. db1 is abandoned exactly as a killed process would leave it.
	// (Its background goroutines are reaped after the test — Close at
	// cleanup time adds nothing to disk, every Ingest already returned.)
	t.Cleanup(func() { db1.Close() })

	db2 := newTestDB(t, persistTestConfig())
	if err := db2.Open(dir); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer db2.Close()

	if db1.Len() != db2.Len() {
		t.Fatalf("recovered %d mappings, ingested %d", db2.Len(), db1.Len())
	}
	lo1, hi1, ok1 := db1.Bounds()
	lo2, hi2, ok2 := db2.Bounds()
	if ok1 != ok2 || lo1 != lo2 || hi1 != hi2 {
		t.Fatalf("bounds diverge: %v %v vs %v %v", lo1, hi1, lo2, hi2)
	}
	if i1, i2 := db1.Oracle().Inserts(), db2.Oracle().Inserts(); i1 != i2 {
		t.Fatalf("oracle inserts diverge: %d vs %d", i1, i2)
	}
	requireIdenticalLocate(t, db1, db2, kps, intr)

	// The uniqueness oracle must rank identically too (it drives client
	// keypoint selection).
	sel1, err := db1.Oracle().SelectUnique(kps, 50)
	if err != nil {
		t.Fatal(err)
	}
	sel2, err := db2.Oracle().SelectUnique(kps, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sel1, sel2) {
		t.Fatal("oracle keypoint selection diverges after recovery")
	}
}

// TestRecoveryFromSnapshotPlusTail covers the compacted case: snapshot,
// more ingest, crash, recover = snapshot load + WAL tail replay.
func TestRecoveryFromSnapshotPlusTail(t *testing.T) {
	if testing.Short() {
		t.Skip("wardriving a venue is slow")
	}
	dir := t.TempDir()
	w := testVenue()
	ms := wardriveMappings(t, w)
	kps, intr := queryKeypoints(t, w)
	half := len(ms) / 2

	db1 := newTestDB(t, persistTestConfig())
	if err := db1.Open(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db1.Close() }) // abandoned mid-test as a crash; reaped after
	if err := db1.Ingest(context.Background(), ms[:half]); err != nil {
		t.Fatal(err)
	}
	if err := db1.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := db1.Ingest(context.Background(), ms[half:]); err != nil {
		t.Fatal(err)
	}
	st := db1.Stats()
	if !st.Persistent || st.SnapshotSeq == 0 || st.LastCompactionUnix == 0 {
		t.Fatalf("stats after compaction: %+v", st)
	}

	db2 := newTestDB(t, persistTestConfig())
	if err := db2.Open(dir); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer db2.Close()
	if db1.Len() != db2.Len() {
		t.Fatalf("recovered %d mappings, ingested %d", db2.Len(), db1.Len())
	}
	requireIdenticalLocate(t, db1, db2, kps, intr)
}

// TestCorruptWALTailTruncatedNotFatal garbles the WAL tail and requires
// recovery to keep everything intact before it, warn, and never panic.
func TestCorruptWALTailTruncatedNotFatal(t *testing.T) {
	dir := t.TempDir()
	cfg := persistTestConfig()

	db1 := newTestDB(t, cfg)
	if err := db1.Open(dir); err != nil {
		t.Fatal(err)
	}
	ms := make([]Mapping, 50)
	for i := range ms {
		ms[i].Desc[0] = byte(i)
		ms[i].Pos.X = float64(i)
	}
	if err := db1.Ingest(context.Background(), ms); err != nil {
		t.Fatal(err)
	}
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}

	// Append garbage to the WAL — a torn record from a mid-write crash.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segment: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var mu sync.Mutex
	var warnings []string
	db2, err := NewDatabase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db2.SetLogger(obs.FuncLogger(func(format string, args ...any) {
		mu.Lock()
		warnings = append(warnings, fmt.Sprintf(format, args...))
		mu.Unlock()
	}))
	if err := db2.Open(dir); err != nil {
		t.Fatalf("recovery after tail corruption: %v", err)
	}
	defer db2.Close()
	if db2.Len() != len(ms) {
		t.Fatalf("recovered %d mappings, want %d", db2.Len(), len(ms))
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, w := range warnings {
		if strings.Contains(w, "truncating wal") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no truncation warning; got %v", warnings)
	}
}

func TestOpenRequiresEmptyDatabase(t *testing.T) {
	db := newTestDB(t, persistTestConfig())
	if err := db.Ingest(context.Background(), []Mapping{{}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Open(t.TempDir()); err == nil {
		t.Fatal("Open on a non-empty database succeeded")
	}
}

func TestDoubleOpenFails(t *testing.T) {
	db := newTestDB(t, persistTestConfig())
	if err := db.Open(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Open(t.TempDir()); err == nil {
		t.Fatal("second Open succeeded")
	}
}

func TestCloseIsIdempotentAndInMemoryNoop(t *testing.T) {
	db := newTestDB(t, persistTestConfig())
	if err := db.Close(); err != nil { // in-memory: no-op
		t.Fatal(err)
	}
	if err := db.Open(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// A closed durable database keeps serving in-memory.
	if err := db.Ingest(context.Background(), []Mapping{{}}); err != nil {
		t.Fatal(err)
	}
}

// TestBackgroundCompaction drives the WAL past a tiny threshold and waits
// for the snapshotter to fold it.
func TestBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := persistTestConfig()
	cfg.WALCompactBytes = 4 << 10

	db := newTestDB(t, cfg)
	if err := db.Open(dir); err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ms := make([]Mapping, 20)
	for round := 0; round < 40; round++ {
		for i := range ms {
			ms[i].Desc[0], ms[i].Desc[1] = byte(round), byte(i)
			ms[i].Pos.X = float64(round*100 + i)
		}
		if err := db.Ingest(context.Background(), ms); err != nil {
			t.Fatal(err)
		}
		if db.Stats().SnapshotSeq > 0 {
			return // snapshotter fired
		}
	}
	// The kick is asynchronous; settle via an explicit Compact only if the
	// background one genuinely never ran.
	t.Fatalf("background snapshotter never compacted: stats %+v", db.Stats())
}

// TestStatsRPCExtendedFields checks the satellite: database size, oracle
// inserts and persistence state travel through the Stats RPC.
func TestStatsRPCExtendedFields(t *testing.T) {
	dir := t.TempDir()
	db := newTestDB(t, persistTestConfig())
	if err := db.Open(dir); err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln, db)
	s.Log = nil
	defer s.Close()
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ms := make([]Mapping, 25)
	for i := range ms {
		ms[i].Desc[0] = byte(i)
		ms[i].Pos.X = float64(i)
	}
	if _, err := c.Ingest(context.Background(), ms); err != nil {
		t.Fatal(err)
	}
	st, err := c.StatsFull(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Mappings != 25 {
		t.Errorf("Mappings = %d", st.Mappings)
	}
	if st.OracleInserts != 25 {
		t.Errorf("OracleInserts = %d", st.OracleInserts)
	}
	if st.DatabaseBytes == 0 {
		t.Error("DatabaseBytes = 0")
	}
	if !st.Persistent {
		t.Error("Persistent = false on a durable database")
	}
	if st.WALBytes == 0 {
		t.Error("WALBytes = 0 after ingest")
	}
	// Count-only Stats stays compatible.
	n, err := c.Stats(context.Background())
	if err != nil || n != 25 {
		t.Errorf("Stats = %d, %v", n, err)
	}
}

// TestOracleSnapshotBudgetWarning checks the satellite: retained oracle
// clones over the byte budget log exactly one warning until usage drops.
func TestOracleSnapshotBudgetWarning(t *testing.T) {
	cfg := persistTestConfig()
	cfg.OracleSnapshotBudgetBytes = 1 // any clone exceeds it
	db, err := NewDatabase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var warnings []string
	db.SetLogger(obs.FuncLogger(func(format string, args ...any) {
		mu.Lock()
		warnings = append(warnings, fmt.Sprintf(format, args...))
		mu.Unlock()
	}))

	if err := db.Ingest(context.Background(), []Mapping{{}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.OracleBlob(); err != nil { // snapshots a clone
		t.Fatal(err)
	}
	if _, err := db.OracleBlob(); err != nil { // same version: no new clone
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	count := 0
	for _, w := range warnings {
		if strings.Contains(w, "oracle snapshot") {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("budget warning logged %d times, want 1: %v", count, warnings)
	}
	if db.Stats().OracleSnapshotBytes == 0 {
		t.Fatal("OracleSnapshotBytes not accounted")
	}
}
