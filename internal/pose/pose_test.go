package pose

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"visualprint/internal/mathx"
	"visualprint/internal/scene"
)

// synthCorrespondences projects random world points through a real camera
// to produce exact 2D-3D correspondences.
func synthCorrespondences(t *testing.T, cam scene.Camera, rng *rand.Rand, n int, noisePx float64) []Correspondence {
	t.Helper()
	var corr []Correspondence
	for len(corr) < n {
		// Points in front of the camera, spread across the view.
		p := cam.Pos.Add(cam.Forward().Scale(3 + rng.Float64()*8)).Add(mathx.Vec3{
			X: rng.NormFloat64() * 2,
			Y: rng.NormFloat64() * 1,
			Z: rng.NormFloat64() * 2,
		})
		px, py, ok := cam.Project(p)
		if !ok {
			continue
		}
		corr = append(corr, Correspondence{
			Px: px + rng.NormFloat64()*noisePx,
			Py: py + rng.NormFloat64()*noisePx,
			P:  p,
		})
	}
	return corr
}

func testIntrinsics(cam scene.Camera) Intrinsics {
	return Intrinsics{W: cam.W, H: cam.H, FovX: cam.FovX, FovY: cam.FovY()}
}

func solverOptions() Options {
	opt := DefaultOptions()
	opt.Deadline = 2 * time.Second
	opt.MaxIterations = 250
	return opt
}

func TestGammaSignsAndMagnitude(t *testing.T) {
	// Center pixel: zero angle; edge pixel: half the FOV.
	fov := 60 * math.Pi / 180
	if g := gamma(50, 50, fov, 100); g != 0 {
		t.Errorf("center gamma = %v", g)
	}
	if g := gamma(100, 50, fov, 100); math.Abs(g-fov/2) > 1e-9 {
		t.Errorf("edge gamma = %v, want %v", g, fov/2)
	}
	if g := gamma(0, 50, fov, 100); math.Abs(g+fov/2) > 1e-9 {
		t.Errorf("left edge gamma = %v, want %v", g, -fov/2)
	}
}

func TestLocalizeExactCorrespondences(t *testing.T) {
	cam := scene.DefaultCamera(320, 240)
	cam.Pos = mathx.Vec3{X: 12, Y: 1.6, Z: 5}
	cam.Yaw = 0.8
	rng := rand.New(rand.NewSource(1))
	corr := synthCorrespondences(t, cam, rng, 20, 0)
	res, err := Localize(corr, testIntrinsics(cam),
		mathx.Vec3{X: 0, Y: 0, Z: 0}, mathx.Vec3{X: 50, Y: 3, Z: 20}, solverOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Position.Dist(cam.Pos); d > 0.5 {
		t.Errorf("position error %.2f m (got %v, want %v)", d, res.Position, cam.Pos)
	}
	if res.Evals == 0 {
		t.Error("no objective evaluations recorded")
	}
}

func TestLocalizeNoisyCorrespondences(t *testing.T) {
	cam := scene.DefaultCamera(320, 240)
	cam.Pos = mathx.Vec3{X: 30, Y: 1.4, Z: 12}
	cam.Yaw = -2.1
	rng := rand.New(rand.NewSource(2))
	corr := synthCorrespondences(t, cam, rng, 30, 1.0) // 1px pixel noise
	res, err := Localize(corr, testIntrinsics(cam),
		mathx.Vec3{}, mathx.Vec3{X: 50, Y: 3, Z: 20}, solverOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Position.Dist(cam.Pos); d > 1.5 {
		t.Errorf("noisy position error %.2f m", d)
	}
}

func TestLocalizeYawEstimate(t *testing.T) {
	cam := scene.DefaultCamera(320, 240)
	cam.Pos = mathx.Vec3{X: 10, Y: 1.6, Z: 8}
	cam.Yaw = 1.1
	rng := rand.New(rand.NewSource(3))
	corr := synthCorrespondences(t, cam, rng, 25, 0)
	res, err := Localize(corr, testIntrinsics(cam),
		mathx.Vec3{}, mathx.Vec3{X: 40, Y: 3, Z: 20}, solverOptions())
	if err != nil {
		t.Fatal(err)
	}
	dyaw := math.Abs(math.Mod(res.Yaw-cam.Yaw+3*math.Pi, 2*math.Pi) - math.Pi)
	if dyaw > 0.2 {
		t.Errorf("yaw error %.3f rad (got %.2f, want %.2f)", dyaw, res.Yaw, cam.Yaw)
	}
}

func TestLocalizeValidation(t *testing.T) {
	intr := Intrinsics{W: 100, H: 100, FovX: 1, FovY: 1}
	if _, err := Localize(make([]Correspondence, 2), intr, mathx.Vec3{}, mathx.Vec3{X: 1, Y: 1, Z: 1}, DefaultOptions()); err == nil {
		t.Error("2 correspondences accepted")
	}
	corr := make([]Correspondence, 5)
	if _, err := Localize(corr, Intrinsics{}, mathx.Vec3{}, mathx.Vec3{X: 1, Y: 1, Z: 1}, DefaultOptions()); err == nil {
		t.Error("zero intrinsics accepted")
	}
}

func TestLocalizeRespectsDeadline(t *testing.T) {
	cam := scene.DefaultCamera(320, 240)
	cam.Pos = mathx.Vec3{X: 5, Y: 1.5, Z: 5}
	rng := rand.New(rand.NewSource(4))
	corr := synthCorrespondences(t, cam, rng, 40, 0)
	opt := DefaultOptions()
	opt.Deadline = 10 * time.Millisecond
	opt.MaxIterations = 1_000_000
	start := time.Now()
	if _, err := Localize(corr, testIntrinsics(cam), mathx.Vec3{}, mathx.Vec3{X: 20, Y: 3, Z: 20}, opt); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline ignored: ran %v", elapsed)
	}
}

func TestLocalizeDeterministicWithSeed(t *testing.T) {
	cam := scene.DefaultCamera(160, 120)
	cam.Pos = mathx.Vec3{X: 8, Y: 1.5, Z: 4}
	rng := rand.New(rand.NewSource(5))
	corr := synthCorrespondences(t, cam, rng, 15, 0)
	opt := solverOptions()
	opt.Deadline = 0 // disable wall-clock so the run is fully deterministic
	opt.MaxIterations = 60
	a, err := Localize(corr, testIntrinsics(cam), mathx.Vec3{}, mathx.Vec3{X: 20, Y: 3, Z: 10}, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Localize(corr, testIntrinsics(cam), mathx.Vec3{}, mathx.Vec3{X: 20, Y: 3, Z: 10}, opt)
	if a.Position != b.Position {
		t.Errorf("non-deterministic solve: %v vs %v", a.Position, b.Position)
	}
}

func TestLocalizeWithOutliers(t *testing.T) {
	// A handful of wrong 3D matches (as post-clustering residue) should
	// not destroy the estimate.
	cam := scene.DefaultCamera(320, 240)
	cam.Pos = mathx.Vec3{X: 14, Y: 1.6, Z: 9}
	cam.Yaw = 2.5
	rng := rand.New(rand.NewSource(6))
	corr := synthCorrespondences(t, cam, rng, 28, 0.5)
	// 2 outliers with wrong 3D points.
	for i := 0; i < 2; i++ {
		corr[i].P = mathx.Vec3{X: rng.Float64() * 40, Y: rng.Float64() * 3, Z: rng.Float64() * 20}
	}
	res, err := Localize(corr, testIntrinsics(cam),
		mathx.Vec3{}, mathx.Vec3{X: 40, Y: 3, Z: 20}, solverOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Position.Dist(cam.Pos); d > 2.5 {
		t.Errorf("position error with outliers %.2f m", d)
	}
}

func TestEstimateYawPerfectGeometry(t *testing.T) {
	cam := scene.DefaultCamera(320, 240)
	cam.Pos = mathx.Vec3{X: 3, Y: 1.5, Z: 3}
	cam.Yaw = 0.6
	rng := rand.New(rand.NewSource(7))
	corr := synthCorrespondences(t, cam, rng, 20, 0)
	yaw := EstimateYaw(corr, testIntrinsics(cam), cam.Pos)
	dyaw := math.Abs(math.Mod(yaw-cam.Yaw+3*math.Pi, 2*math.Pi) - math.Pi)
	if dyaw > 0.05 {
		t.Errorf("yaw error %.3f", dyaw)
	}
}

func BenchmarkLocalize30Corr(b *testing.B) {
	cam := scene.DefaultCamera(320, 240)
	cam.Pos = mathx.Vec3{X: 12, Y: 1.6, Z: 5}
	rng := rand.New(rand.NewSource(8))
	var corr []Correspondence
	for len(corr) < 30 {
		p := cam.Pos.Add(cam.Forward().Scale(3 + rng.Float64()*8)).Add(mathx.Vec3{
			X: rng.NormFloat64() * 2, Y: rng.NormFloat64(), Z: rng.NormFloat64() * 2,
		})
		if px, py, ok := cam.Project(p); ok {
			corr = append(corr, Correspondence{Px: px, Py: py, P: p})
		}
	}
	opt := DefaultOptions()
	opt.Deadline = 50 * time.Millisecond
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Localize(corr, testIntrinsics(cam), mathx.Vec3{}, mathx.Vec3{X: 50, Y: 3, Z: 20}, opt)
	}
}
