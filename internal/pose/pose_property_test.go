package pose

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"visualprint/internal/mathx"
)

// TestResidualZeroAtTruePosition: with exact correspondences, the pairwise
// angular residual evaluated at the true camera position must vanish.
func TestResidualZeroAtTruePosition(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 50; trial++ {
		cam := mathx.Vec3{
			X: rng.Float64()*20 - 10,
			Y: rng.Float64() * 3,
			Z: rng.Float64()*20 - 10,
		}
		// Two visible points and their exact observed angles.
		pi := cam.Add(mathx.Vec3{X: rng.NormFloat64() * 3, Y: rng.NormFloat64(), Z: 4 + rng.Float64()*4})
		pj := cam.Add(mathx.Vec3{X: rng.NormFloat64() * 3, Y: rng.NormFloat64(), Z: 4 + rng.Float64()*4})
		ri := pi.Sub(cam).Normalize()
		rj := pj.Sub(cam).Normalize()
		g3 := math.Acos(mathx.Clamp(ri.Dot(rj), -1, 1))
		// Azimuths about the vertical axis.
		ai := math.Atan2(pi.X-cam.X, pi.Z-cam.Z)
		aj := math.Atan2(pj.X-cam.X, pj.Z-cam.Z)
		gx := math.Abs(math.Mod(ai-aj+3*math.Pi, 2*math.Pi) - math.Pi)
		pg := newPairGeometry(gx, g3, pi, pj)
		if r := pg.residual(cam.X, cam.Y, cam.Z); r > 1e-9 {
			t.Fatalf("trial %d: residual %g at the true position", trial, r)
		}
	}
}

// TestResidualPositiveElsewhere: the residual grows away from the true
// position (no spurious global zero for a generic pair).
func TestResidualNonNegativeAndCapped(t *testing.T) {
	pg := newPairGeometry(0.2, 0.3,
		mathx.Vec3{X: 1, Y: 1, Z: 5},
		mathx.Vec3{X: -2, Y: 1.5, Z: 6})
	f := func(x, y, z float64) bool {
		r := pg.residual(math.Mod(x, 50), math.Mod(y, 5), math.Mod(z, 50))
		return r >= 0 && r <= residualCap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestGammaAntisymmetric: gamma is odd around the image center.
func TestGammaAntisymmetric(t *testing.T) {
	f := func(off float64) bool {
		off = math.Mod(off, 50)
		fov := 1.2
		a := gamma(100+off, 100, fov, 200)
		b := gamma(100-off, 100, fov, 200)
		return math.Abs(a+b) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEstimateYawInvariantToPointPermutation: the circular-mean yaw must
// not depend on correspondence order.
func TestEstimateYawInvariantToPointPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	intr := Intrinsics{W: 200, H: 150, FovX: 1.1, FovY: 0.9}
	pos := mathx.Vec3{X: 3, Y: 1.5, Z: 2}
	var corr []Correspondence
	for i := 0; i < 10; i++ {
		corr = append(corr, Correspondence{
			Px: rng.Float64() * 200,
			Py: rng.Float64() * 150,
			P:  mathx.Vec3{X: rng.Float64() * 10, Y: rng.Float64() * 3, Z: 5 + rng.Float64()*5},
		})
	}
	a := EstimateYaw(corr, intr, pos)
	rng.Shuffle(len(corr), func(i, j int) { corr[i], corr[j] = corr[j], corr[i] })
	b := EstimateYaw(corr, intr, pos)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("yaw depends on order: %v vs %v", a, b)
	}
}
