// Package pose estimates the client's 3D camera position from 2D-3D
// keypoint correspondences, implementing the nonlinear optimization of the
// paper's Figure 12 over the angular geometry of Figure 11.
//
// For each pair of matched keypoints (i, j), the angle between them as seen
// from the camera is known from their pixel coordinates and the camera's
// field of view (gamma in Figure 11). For a hypothesized camera position
// (x, y, z), the same angle is implied by the law of cosines against the
// known 3D positions of the two keypoints. The optimizer searches for the
// position that minimizes the summed angular residuals E over all pairs,
// separately on the X/Z and Y/Z planes as the paper formulates it.
//
// As in the paper ("we solve the localization optimization using a
// time-bounded differential evolution"), the solver is a bounded
// differential-evolution search over the venue's bounding box with an
// evaluation/time budget. The DE is the synchronous-generation rand/1/bin
// variant: every RNG draw happens serially in index order, each
// generation's trial population is derived from the generation-start
// snapshot, and only then are the trials evaluated — on a bounded worker
// pool when Options.Workers allows — so the result is bit-identical for a
// fixed seed at any worker count (see DESIGN.md "Performance"). The search
// ends at the evaluation budget, the deadline, or Options.Tol population
// convergence, whichever comes first.
package pose

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"visualprint/internal/mathx"
)

// Intrinsics describes the query camera: image size and horizontal/vertical
// fields of view.
type Intrinsics struct {
	W, H       int
	FovX, FovY float64
}

// Correspondence pairs an observed pixel with the known 3D position
// retrieved from the server's lookup table.
type Correspondence struct {
	Px, Py float64
	P      mathx.Vec3
}

// gamma implements Figure 12's gamma(p, C, F, S) with sign retained: the
// angle from the optical axis to the keypoint's projection on one image
// axis.
func gamma(p, c, fov float64, s float64) float64 {
	return math.Atan((p - c) * math.Tan(fov/2) / (s / 2))
}

// pairGeometry precomputes, for one keypoint pair, the observed angles and
// the 3D coordinates entering the law-of-cosines constraint, plus the
// position-independent parts of that constraint: aij (the pairwise X/Z
// squared distance) is invariant across the ~2 million objective
// evaluations of a default solve, so it is computed once here instead of
// once per residual call.
//
// The paper's Figure 12 splits the constraint into X/Z- and Y/Z-plane
// angles. The X/Z (azimuthal) split is exact for an upright camera — the
// azimuth difference between two keypoints does not depend on the unknown
// yaw. The Y/Z split, however, is only yaw-invariant when the camera faces
// +Z; used verbatim it conditions the solve poorly. We therefore keep the
// paper's azimuthal term and replace the vertical term with the full 3D
// pairwise angle (the angle between the two pixel rays), which is invariant
// to the entire unknown rotation and subsumes the vertical constraint.
type pairGeometry struct {
	gx     float64 // observed azimuthal separation (absolute, radians)
	g3     float64 // observed full 3D angle between the two rays
	pi, pj mathx.Vec3
	aij    float64 // X/Z squared distance between pi and pj (Figure 12's d(ki,kj))
	// c3lo/c3hi bound, in cosine space, the window of 3D angles within
	// residualCap of g3. A trial whose ray cosine falls outside
	// [c3lo, c3hi] provably yields a capped residual, so residual can
	// return residualCap without evaluating either Acos (see residual).
	c3lo, c3hi float64
}

// capCosMargin absorbs the worst-case error of the precomputed math.Cos
// bounds and the hot path's math.Acos (both correctly rounded to ~1 ulp,
// absolute error < 1e-15 here): a raw cosine must clear the bound by this
// much before the Acos-free capped path may be taken. Values inside the
// margin band fall through to the full computation, which is always exact,
// so the fast path never changes a result — it only skips work that is
// guaranteed (with ~10^6x slack) to produce the cap.
const capCosMargin = 1e-9

// capAngleMargin keeps the cosine bounds away from the flat regions of cos
// at 0 and pi, where a cosine-space margin stops implying an angle-space
// margin. Windows that close to the domain edge simply don't get a bound
// on that side.
const capAngleMargin = 1e-4

func newPairGeometry(gx, g3 float64, pi, pj mathx.Vec3) pairGeometry {
	pg := pairGeometry{
		gx: gx, g3: g3, pi: pi, pj: pj,
		aij:  dsq2(pi.X, pi.Z, pj.X, pj.Z),
		c3lo: math.Inf(-1),
		c3hi: math.Inf(1),
	}
	// cos is strictly decreasing on [0, pi]: angles above g3+cap have
	// cosines below cos(g3+cap), angles below g3-cap have cosines above
	// cos(g3-cap). Each bound exists only when the window edge stays
	// inside (0, pi) by capAngleMargin.
	if g3+residualCap <= math.Pi-capAngleMargin {
		pg.c3lo = math.Cos(g3+residualCap) - capCosMargin
	}
	if g3 >= residualCap+capAngleMargin {
		pg.c3hi = math.Cos(g3-residualCap) + capCosMargin
	}
	return pg
}

// dsq2 is Figure 12's d(): squared Euclidean distance in a 2D plane.
func dsq2(a1, a2, b1, b2 float64) float64 {
	d1, d2 := a1-b1, a2-b2
	return d1*d1 + d2*d2
}

// residualCap truncates per-pair angular errors so a few wrong
// correspondences (post-clustering residue) cannot dominate the objective.
const residualCap = 0.5

// residual returns the truncated angular error for a hypothesized camera
// position: full-3D-angle term plus the paper's azimuthal (X/Z plane) term.
// The camera-to-point deltas are computed once and reused for both terms
// ((a-x)^2 equals (x-a)^2 exactly in IEEE arithmetic, so ai/aj match the
// d() formulation bit for bit — pinned by TestResidualMatchesReference).
//
// Both terms add up to at least residualCap whenever the 3D-angle error
// alone reaches the cap, so positions whose ray cosine falls outside the
// precomputed [c3lo, c3hi] window return the cap without evaluating
// math.Acos at all — the dominant cost of this function. For the
// mismatched correspondences that survive clustering (and for most trials
// of a not-yet-converged population) this short-circuit carries the bulk
// of the evaluations; TestResidualMatchesReference pins it against the
// unconditional formula across both paths.
func (pg *pairGeometry) residual(x, y, z float64) float64 {
	// Full 3D angle via the law of cosines on the two point ranges.
	dix, diy, diz := pg.pi.X-x, pg.pi.Y-y, pg.pi.Z-z
	djx, djy, djz := pg.pj.X-x, pg.pj.Y-y, pg.pj.Z-z
	di := dix*dix + diy*diy + diz*diz
	dj := djx*djx + djy*djy + djz*djz
	e3 := math.Pi // worst case when degenerate
	if di > 1e-12 && dj > 1e-12 {
		cosv := (dix*djx + diy*djy + diz*djz) / math.Sqrt(di*dj)
		if cosv <= pg.c3lo || cosv >= pg.c3hi {
			// The 3D angle is more than residualCap away from g3 (by at
			// least the margins' slack), so e3 >= residualCap and the sum
			// caps regardless of the azimuthal term.
			return residualCap
		}
		e3 = math.Abs(math.Acos(mathx.Clamp(cosv, -1, 1)) - pg.g3)
	}
	if e3 >= residualCap {
		// ex >= 0, so the sum caps; skip the azimuthal Acos and sqrts.
		return residualCap
	}
	// Azimuthal (X/Z plane) term, as in Figure 12; aij was precomputed at
	// pair construction.
	ai := dix*dix + diz*diz
	aj := djx*djx + djz*djz
	ex := math.Pi
	if ai > 1e-12 && aj > 1e-12 {
		cosv := mathx.Clamp((ai+aj-pg.aij)/(2*math.Sqrt(ai)*math.Sqrt(aj)), -1, 1)
		ex = math.Abs(math.Acos(cosv) - pg.gx)
	}
	e := e3 + 0.5*ex
	if e > residualCap {
		e = residualCap
	}
	return e
}

// Options tunes the differential-evolution solver.
type Options struct {
	// PopSize is the DE population size.
	PopSize int
	// MaxIterations bounds DE generations.
	MaxIterations int
	// Deadline, if positive, stops the search after this wall-clock
	// budget (the paper's "time-bounded" solve).
	Deadline time.Duration
	// F and CR are the DE differential weight and crossover rate.
	F, CR float64
	// MaxPairs caps the number of keypoint pairs entering the objective
	// (pairs grow quadratically; a subsample suffices). 0 means all.
	MaxPairs int
	// Seed makes the search deterministic.
	Seed int64
	// Workers bounds the pool evaluating each generation's trials.
	// 0 uses GOMAXPROCS; 1 evaluates inline. All RNG draws are serial
	// regardless, so the result is identical at any worker count
	// (pinned by TestLocalizeWorkerCountBitIdentical).
	Workers int
	// Tol stops the search once the population has converged: after a
	// generation's selection, if std(cost) <= Tol*|mean(cost)| the
	// remaining generations cannot meaningfully improve the answer and
	// are skipped. This is the convergence criterion of scipy's
	// differential_evolution (its default is 0.01; we default to a more
	// conservative 0.001). <= 0 disables the check and always runs the
	// full MaxIterations budget.
	Tol float64
	// PriorPos and PriorRadius warm-start the search from a predicted
	// camera position (a tracking session's motion-model extrapolation —
	// see internal/track). When PriorRadius > 0 the search box is
	// intersected with the axis-aligned cube PriorPos ± PriorRadius
	// (when the intersection is non-empty; a prior entirely outside the
	// caller's box is ignored) and the first member of the initial
	// population is pinned to the clamped prior itself, so a good prior
	// converges in a fraction of the cold generations via the Tol stop.
	//
	// Bit-identity contract: PriorRadius == 0 leaves every code path,
	// bound, and RNG draw of the solve untouched — a solve without a
	// prior is Float64bits-identical to one on a build that predates
	// these fields (pinned by TestLocalizeZeroPriorBitIdentical).
	PriorPos    mathx.Vec3
	PriorRadius float64
	// MinResidual > 0 stops the search once the best population member's
	// mean per-pair residual (radians) has dropped to this value — an
	// absolute "good enough" criterion complementing the relative Tol
	// stop, which cannot fire when the optimum cost approaches zero
	// (std and mean shrink together). Warm-started tracking solves use
	// it to bank the prior's head start instead of polishing an already
	// sub-millimeter answer for the full budget. 0 disables the check
	// (the cold default), leaving results bit-identical.
	MinResidual float64
}

// DefaultOptions returns solver settings tuned for indoor venues.
func DefaultOptions() Options {
	return Options{
		PopSize:       48,
		MaxIterations: 150,
		Deadline:      150 * time.Millisecond,
		F:             0.7,
		CR:            0.9,
		MaxPairs:      300,
		Seed:          1,
		Tol:           0.001,
	}
}

// Result reports a localization solve.
type Result struct {
	Position mathx.Vec3
	Residual float64 // mean angular residual (radians per pair)
	Evals    int
	Yaw      float64 // estimated heading (radians)
}

// objectiveLimited sums the pair residuals for trial v, aborting as soon as
// the partial sum reaches limit. Residuals are non-negative and IEEE float
// addition of non-negative terms is monotonic, so an aborted evaluation's
// full sum would also have been >= limit; callers that compare the return
// value against limit with a strict < therefore decide exactly as if the
// full sum had been computed, while a typical late-generation losing trial
// costs a fraction of a full evaluation. Winning trials (sum stays below
// limit throughout) are summed in full, in pair order — bit-identical to
// the unconditional evaluation.
func objectiveLimited(pairs []pairGeometry, v [3]float64, limit float64) float64 {
	var s float64
	for k := range pairs {
		s += pairs[k].residual(v[0], v[1], v[2])
		if s >= limit {
			return s
		}
	}
	return s
}

// Localize estimates the camera position from correspondences within the
// axis-aligned search box [lo, hi]. It is LocalizeContext without
// cancellation.
func Localize(corr []Correspondence, intr Intrinsics, lo, hi mathx.Vec3, opt Options) (Result, error) {
	return LocalizeContext(context.Background(), corr, intr, lo, hi, opt)
}

// LocalizeContext is Localize with cooperative cancellation: the context is
// checked once per DE generation, so a canceled or expired request stops
// burning CPU within one generation (~PopSize objective evaluations) instead
// of running out its full iteration/deadline budget. A cancellation before
// the first generation completes returns ctx.Err(); the search otherwise
// proceeds exactly as Localize — the context check consumes no randomness,
// so a context that never fires leaves results bit-identical.
func LocalizeContext(ctx context.Context, corr []Correspondence, intr Intrinsics, lo, hi mathx.Vec3, opt Options) (Result, error) {
	if len(corr) < 3 {
		return Result{}, errors.New("pose: need at least 3 correspondences")
	}
	if intr.W <= 0 || intr.H <= 0 || intr.FovX <= 0 || intr.FovY <= 0 {
		return Result{}, errors.New("pose: invalid intrinsics")
	}
	if opt.PopSize < 8 {
		opt.PopSize = 8
	}
	if opt.MaxIterations <= 0 {
		opt.MaxIterations = 100
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Precompute pair geometry. Pixel rays in the camera frame: square
	// pixels are assumed, so one focal length serves both axes.
	cx, cy := float64(intr.W)/2, float64(intr.H)/2
	focal := cx / math.Tan(intr.FovX/2)
	ray := func(px, py float64) mathx.Vec3 {
		return mathx.Vec3{X: (px - cx) / focal, Y: -(py - cy) / focal, Z: 1}.Normalize()
	}
	pairs := make([]pairGeometry, 0, len(corr)*(len(corr)-1)/2)
	for i := 0; i < len(corr); i++ {
		ri := ray(corr[i].Px, corr[i].Py)
		gi := gamma(corr[i].Px, cx, intr.FovX, float64(intr.W))
		for j := i + 1; j < len(corr); j++ {
			rj := ray(corr[j].Px, corr[j].Py)
			gj := gamma(corr[j].Px, cx, intr.FovX, float64(intr.W))
			pairs = append(pairs, newPairGeometry(
				math.Abs(gi-gj),
				math.Acos(mathx.Clamp(ri.Dot(rj), -1, 1)),
				corr[i].P,
				corr[j].P,
			))
		}
	}
	if opt.MaxPairs > 0 && len(pairs) > opt.MaxPairs {
		rng.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
		pairs = pairs[:opt.MaxPairs]
	}

	warm := false
	if opt.PriorRadius > 0 {
		plo := mathx.Vec3{X: opt.PriorPos.X - opt.PriorRadius, Y: opt.PriorPos.Y - opt.PriorRadius, Z: opt.PriorPos.Z - opt.PriorRadius}
		phi := mathx.Vec3{X: opt.PriorPos.X + opt.PriorRadius, Y: opt.PriorPos.Y + opt.PriorRadius, Z: opt.PriorPos.Z + opt.PriorRadius}
		if ilo, ihi, ok := intersectBox(lo, hi, plo, phi); ok {
			lo, hi = ilo, ihi
			warm = true
		}
	}
	span := [3]float64{hi.X - lo.X, hi.Y - lo.Y, hi.Z - lo.Z}
	lov := [3]float64{lo.X, lo.Y, lo.Z}
	sample := func() [3]float64 {
		return [3]float64{
			lov[0] + rng.Float64()*span[0],
			lov[1] + rng.Float64()*span[1],
			lov[2] + rng.Float64()*span[2],
		}
	}

	// Differential evolution, synchronous-generation rand/1/bin: trials are
	// derived from the generation-start population with all RNG draws in
	// serial index order, then evaluated (possibly in parallel), then
	// selected. Each trial's evaluation is an independent serial summation,
	// so the outcome does not depend on the worker count.
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	evals := 0
	pop := make([][3]float64, opt.PopSize)
	cost := make([]float64, opt.PopSize)
	for i := range pop {
		pop[i] = sample()
		if warm && i == 0 {
			// Pin one member to the predicted pose itself (sample() above
			// still ran, keeping the RNG stream uniform across the
			// population regardless of the prior).
			pp := [3]float64{opt.PriorPos.X, opt.PriorPos.Y, opt.PriorPos.Z}
			for d := 0; d < 3; d++ {
				pop[i][d] = mathx.Clamp(pp[d], lov[d], lov[d]+span[d])
			}
		}
		cost[i] = objectiveLimited(pairs, pop[i], math.Inf(1))
	}
	evals += opt.PopSize
	trials := make([][3]float64, opt.PopSize)
	trialCost := make([]float64, opt.PopSize)
	evaluate := newBatchEvaluator(opt.Workers, pairs, trials, trialCost, cost)
	start := time.Now()
	for iter := 0; iter < opt.MaxIterations; iter++ {
		if opt.Deadline > 0 && time.Since(start) > opt.Deadline {
			break
		}
		// Cooperative cancellation, once per generation: the caller's
		// request died or expired, so the remaining budget is wasted work.
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		for i := range pop {
			a, b, c := rng.Intn(opt.PopSize), rng.Intn(opt.PopSize), rng.Intn(opt.PopSize)
			var trial [3]float64
			jrand := rng.Intn(3)
			for d := 0; d < 3; d++ {
				if d == jrand || rng.Float64() < opt.CR {
					trial[d] = pop[a][d] + opt.F*(pop[b][d]-pop[c][d])
				} else {
					trial[d] = pop[i][d]
				}
				trial[d] = mathx.Clamp(trial[d], lov[d], lov[d]+span[d])
			}
			trials[i] = trial
		}
		evaluate()
		evals += opt.PopSize
		for i := range pop {
			// A trial whose evaluation aborted returns a partial sum that is
			// >= cost[i] by construction, so the strict < rejects it exactly
			// as the full sum would have.
			if trialCost[i] < cost[i] {
				pop[i], cost[i] = trials[i], trialCost[i]
			}
		}
		if opt.Tol > 0 && converged(cost, opt.Tol) {
			break
		}
		if opt.MinResidual > 0 {
			bc := cost[0]
			for i := 1; i < opt.PopSize; i++ {
				if cost[i] < bc {
					bc = cost[i]
				}
			}
			if bc <= opt.MinResidual*float64(len(pairs)) {
				break
			}
		}
	}
	best := 0
	for i := 1; i < opt.PopSize; i++ {
		if cost[i] < cost[best] {
			best = i
		}
	}
	pos := mathx.Vec3{X: pop[best][0], Y: pop[best][1], Z: pop[best][2]}
	res := Result{
		Position: pos,
		Residual: cost[best] / float64(len(pairs)),
		Evals:    evals,
		Yaw:      EstimateYaw(corr, intr, pos),
	}
	return res, nil
}

// newBatchEvaluator returns a function that fills trialCost[i] =
// objectiveLimited(pairs, trials[i], cost[i]) for every i, splitting the
// population across at most workers goroutines. Each index is evaluated by
// exactly one worker against the generation-start cost snapshot, so the
// filled values are identical at any worker count.
func newBatchEvaluator(workers int, pairs []pairGeometry, trials [][3]float64, trialCost, cost []float64) func() {
	n := len(trials)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return func() {
			for i := 0; i < n; i++ {
				trialCost[i] = objectiveLimited(pairs, trials[i], cost[i])
			}
		}
	}
	return func() {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * n / workers
			hi := (w + 1) * n / workers
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					trialCost[i] = objectiveLimited(pairs, trials[i], cost[i])
				}
			}(lo, hi)
		}
		wg.Wait()
	}
}

// converged reports whether the population's cost spread has collapsed
// below the relative tolerance: std(cost) <= tol*|mean(cost)| — the same
// criterion scipy's differential_evolution uses. Costs hold only fully
// evaluated (never aborted) sums, so the decision depends on true
// objective values and is identical at any worker count.
func converged(cost []float64, tol float64) bool {
	var mean float64
	for _, c := range cost {
		mean += c
	}
	mean /= float64(len(cost))
	var s2 float64
	for _, c := range cost {
		d := c - mean
		s2 += d * d
	}
	return math.Sqrt(s2/float64(len(cost))) <= tol*math.Abs(mean)
}

// intersectBox returns the axis-aligned intersection of [alo, ahi] and
// [blo, bhi], and whether it is non-empty in every dimension.
func intersectBox(alo, ahi, blo, bhi mathx.Vec3) (mathx.Vec3, mathx.Vec3, bool) {
	lo := mathx.Vec3{X: math.Max(alo.X, blo.X), Y: math.Max(alo.Y, blo.Y), Z: math.Max(alo.Z, blo.Z)}
	hi := mathx.Vec3{X: math.Min(ahi.X, bhi.X), Y: math.Min(ahi.Y, bhi.Y), Z: math.Min(ahi.Z, bhi.Z)}
	if lo.X > hi.X || lo.Y > hi.Y || lo.Z > hi.Z {
		return mathx.Vec3{}, mathx.Vec3{}, false
	}
	return lo, hi, true
}

// EstimateYaw recovers the camera heading given its position: for each
// correspondence, the world bearing to the 3D point minus the in-image
// bearing of its pixel gives one yaw estimate; the circular mean is
// returned. Together with Localize's (x, y, z) this provides the
// "positioning fidelity similar to Google Tango, but with only a standard,
// 2D, RGB camera".
func EstimateYaw(corr []Correspondence, intr Intrinsics, pos mathx.Vec3) float64 {
	cx := float64(intr.W) / 2
	var sumSin, sumCos float64
	for _, c := range corr {
		worldBearing := math.Atan2(c.P.X-pos.X, c.P.Z-pos.Z)
		imageBearing := gamma(c.Px, cx, intr.FovX, float64(intr.W))
		yaw := worldBearing - imageBearing
		sumSin += math.Sin(yaw)
		sumCos += math.Cos(yaw)
	}
	return math.Atan2(sumSin, sumCos)
}
