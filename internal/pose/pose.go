// Package pose estimates the client's 3D camera position from 2D-3D
// keypoint correspondences, implementing the nonlinear optimization of the
// paper's Figure 12 over the angular geometry of Figure 11.
//
// For each pair of matched keypoints (i, j), the angle between them as seen
// from the camera is known from their pixel coordinates and the camera's
// field of view (gamma in Figure 11). For a hypothesized camera position
// (x, y, z), the same angle is implied by the law of cosines against the
// known 3D positions of the two keypoints. The optimizer searches for the
// position that minimizes the summed angular residuals E over all pairs,
// separately on the X/Z and Y/Z planes as the paper formulates it.
//
// As in the paper ("we solve the localization optimization using a
// time-bounded differential evolution"), the solver is a bounded
// differential-evolution search over the venue's bounding box with an
// evaluation/time budget.
package pose

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"visualprint/internal/mathx"
)

// Intrinsics describes the query camera: image size and horizontal/vertical
// fields of view.
type Intrinsics struct {
	W, H       int
	FovX, FovY float64
}

// Correspondence pairs an observed pixel with the known 3D position
// retrieved from the server's lookup table.
type Correspondence struct {
	Px, Py float64
	P      mathx.Vec3
}

// gamma implements Figure 12's gamma(p, C, F, S) with sign retained: the
// angle from the optical axis to the keypoint's projection on one image
// axis.
func gamma(p, c, fov float64, s float64) float64 {
	return math.Atan((p - c) * math.Tan(fov/2) / (s / 2))
}

// pairGeometry precomputes, for one keypoint pair, the observed angles and
// the 3D coordinates entering the law-of-cosines constraint.
//
// The paper's Figure 12 splits the constraint into X/Z- and Y/Z-plane
// angles. The X/Z (azimuthal) split is exact for an upright camera — the
// azimuth difference between two keypoints does not depend on the unknown
// yaw. The Y/Z split, however, is only yaw-invariant when the camera faces
// +Z; used verbatim it conditions the solve poorly. We therefore keep the
// paper's azimuthal term and replace the vertical term with the full 3D
// pairwise angle (the angle between the two pixel rays), which is invariant
// to the entire unknown rotation and subsumes the vertical constraint.
type pairGeometry struct {
	gx     float64 // observed azimuthal separation (absolute, radians)
	g3     float64 // observed full 3D angle between the two rays
	pi, pj mathx.Vec3
}

// dsq2 is Figure 12's d(): squared Euclidean distance in a 2D plane.
func dsq2(a1, a2, b1, b2 float64) float64 {
	d1, d2 := a1-b1, a2-b2
	return d1*d1 + d2*d2
}

// residualCap truncates per-pair angular errors so a few wrong
// correspondences (post-clustering residue) cannot dominate the objective.
const residualCap = 0.5

// residual returns the truncated angular error for a hypothesized camera
// position: full-3D-angle term plus the paper's azimuthal (X/Z plane) term.
func (pg *pairGeometry) residual(x, y, z float64) float64 {
	// Full 3D angle via the law of cosines on the two point ranges.
	dix, diy, diz := pg.pi.X-x, pg.pi.Y-y, pg.pi.Z-z
	djx, djy, djz := pg.pj.X-x, pg.pj.Y-y, pg.pj.Z-z
	di := dix*dix + diy*diy + diz*diz
	dj := djx*djx + djy*djy + djz*djz
	e3 := math.Pi // worst case when degenerate
	if di > 1e-12 && dj > 1e-12 {
		dot := dix*djx + diy*djy + diz*djz
		cosv := mathx.Clamp(dot/math.Sqrt(di*dj), -1, 1)
		e3 = math.Abs(math.Acos(cosv) - pg.g3)
	}
	// Azimuthal (X/Z plane) term, as in Figure 12.
	ai := dsq2(x, z, pg.pi.X, pg.pi.Z)
	aj := dsq2(x, z, pg.pj.X, pg.pj.Z)
	aij := dsq2(pg.pi.X, pg.pi.Z, pg.pj.X, pg.pj.Z)
	ex := math.Pi
	if ai > 1e-12 && aj > 1e-12 {
		cosv := mathx.Clamp((ai+aj-aij)/(2*math.Sqrt(ai)*math.Sqrt(aj)), -1, 1)
		ex = math.Abs(math.Acos(cosv) - pg.gx)
	}
	e := e3 + 0.5*ex
	if e > residualCap {
		e = residualCap
	}
	return e
}

// Options tunes the differential-evolution solver.
type Options struct {
	// PopSize is the DE population size.
	PopSize int
	// MaxIterations bounds DE generations.
	MaxIterations int
	// Deadline, if positive, stops the search after this wall-clock
	// budget (the paper's "time-bounded" solve).
	Deadline time.Duration
	// F and CR are the DE differential weight and crossover rate.
	F, CR float64
	// MaxPairs caps the number of keypoint pairs entering the objective
	// (pairs grow quadratically; a subsample suffices). 0 means all.
	MaxPairs int
	// Seed makes the search deterministic.
	Seed int64
}

// DefaultOptions returns solver settings tuned for indoor venues.
func DefaultOptions() Options {
	return Options{
		PopSize:       48,
		MaxIterations: 150,
		Deadline:      150 * time.Millisecond,
		F:             0.7,
		CR:            0.9,
		MaxPairs:      300,
		Seed:          1,
	}
}

// Result reports a localization solve.
type Result struct {
	Position mathx.Vec3
	Residual float64 // mean angular residual (radians per pair)
	Evals    int
	Yaw      float64 // estimated heading (radians)
}

// Localize estimates the camera position from correspondences within the
// axis-aligned search box [lo, hi].
func Localize(corr []Correspondence, intr Intrinsics, lo, hi mathx.Vec3, opt Options) (Result, error) {
	if len(corr) < 3 {
		return Result{}, errors.New("pose: need at least 3 correspondences")
	}
	if intr.W <= 0 || intr.H <= 0 || intr.FovX <= 0 || intr.FovY <= 0 {
		return Result{}, errors.New("pose: invalid intrinsics")
	}
	if opt.PopSize < 8 {
		opt.PopSize = 8
	}
	if opt.MaxIterations <= 0 {
		opt.MaxIterations = 100
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Precompute pair geometry. Pixel rays in the camera frame: square
	// pixels are assumed, so one focal length serves both axes.
	cx, cy := float64(intr.W)/2, float64(intr.H)/2
	focal := cx / math.Tan(intr.FovX/2)
	ray := func(px, py float64) mathx.Vec3 {
		return mathx.Vec3{X: (px - cx) / focal, Y: -(py - cy) / focal, Z: 1}.Normalize()
	}
	var pairs []pairGeometry
	for i := 0; i < len(corr); i++ {
		ri := ray(corr[i].Px, corr[i].Py)
		gi := gamma(corr[i].Px, cx, intr.FovX, float64(intr.W))
		for j := i + 1; j < len(corr); j++ {
			rj := ray(corr[j].Px, corr[j].Py)
			gj := gamma(corr[j].Px, cx, intr.FovX, float64(intr.W))
			pairs = append(pairs, pairGeometry{
				gx: math.Abs(gi - gj),
				g3: math.Acos(mathx.Clamp(ri.Dot(rj), -1, 1)),
				pi: corr[i].P,
				pj: corr[j].P,
			})
		}
	}
	if opt.MaxPairs > 0 && len(pairs) > opt.MaxPairs {
		rng.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
		pairs = pairs[:opt.MaxPairs]
	}

	evals := 0
	objective := func(v [3]float64) float64 {
		evals++
		var s float64
		for k := range pairs {
			s += pairs[k].residual(v[0], v[1], v[2])
		}
		return s
	}

	span := [3]float64{hi.X - lo.X, hi.Y - lo.Y, hi.Z - lo.Z}
	lov := [3]float64{lo.X, lo.Y, lo.Z}
	sample := func() [3]float64 {
		return [3]float64{
			lov[0] + rng.Float64()*span[0],
			lov[1] + rng.Float64()*span[1],
			lov[2] + rng.Float64()*span[2],
		}
	}

	// Differential evolution (rand/1/bin).
	pop := make([][3]float64, opt.PopSize)
	cost := make([]float64, opt.PopSize)
	for i := range pop {
		pop[i] = sample()
		cost[i] = objective(pop[i])
	}
	start := time.Now()
	for iter := 0; iter < opt.MaxIterations; iter++ {
		if opt.Deadline > 0 && time.Since(start) > opt.Deadline {
			break
		}
		for i := range pop {
			a, b, c := rng.Intn(opt.PopSize), rng.Intn(opt.PopSize), rng.Intn(opt.PopSize)
			var trial [3]float64
			jrand := rng.Intn(3)
			for d := 0; d < 3; d++ {
				if d == jrand || rng.Float64() < opt.CR {
					trial[d] = pop[a][d] + opt.F*(pop[b][d]-pop[c][d])
				} else {
					trial[d] = pop[i][d]
				}
				trial[d] = mathx.Clamp(trial[d], lov[d], lov[d]+span[d])
			}
			if tc := objective(trial); tc < cost[i] {
				pop[i], cost[i] = trial, tc
			}
		}
	}
	best := 0
	for i := 1; i < opt.PopSize; i++ {
		if cost[i] < cost[best] {
			best = i
		}
	}
	pos := mathx.Vec3{X: pop[best][0], Y: pop[best][1], Z: pop[best][2]}
	res := Result{
		Position: pos,
		Residual: cost[best] / float64(len(pairs)),
		Evals:    evals,
		Yaw:      EstimateYaw(corr, intr, pos),
	}
	return res, nil
}

// EstimateYaw recovers the camera heading given its position: for each
// correspondence, the world bearing to the 3D point minus the in-image
// bearing of its pixel gives one yaw estimate; the circular mean is
// returned. Together with Localize's (x, y, z) this provides the
// "positioning fidelity similar to Google Tango, but with only a standard,
// 2D, RGB camera".
func EstimateYaw(corr []Correspondence, intr Intrinsics, pos mathx.Vec3) float64 {
	cx := float64(intr.W) / 2
	var sumSin, sumCos float64
	for _, c := range corr {
		worldBearing := math.Atan2(c.P.X-pos.X, c.P.Z-pos.Z)
		imageBearing := gamma(c.Px, cx, intr.FovX, float64(intr.W))
		yaw := worldBearing - imageBearing
		sumSin += math.Sin(yaw)
		sumCos += math.Cos(yaw)
	}
	return math.Atan2(sumSin, sumCos)
}
