package pose

// Bit-identity regression coverage for the optimized solver (see DESIGN.md
// "Performance"). The optimizations must be invisible in the output:
//
//   - the residual with precomputed aij and reused camera-to-point deltas
//     must match the original per-call d() formulation bit for bit;
//   - Localize with the early-abort objective must match a reference
//     solver that evaluates every trial in full with the original residual;
//   - the worker count must not change a single output bit, because every
//     RNG draw is serial and each trial's cost is an independent serial
//     summation.

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"visualprint/internal/mathx"
)

// referenceResidual is the pre-optimization residual, kept verbatim: aij and
// the ai/aj plane distances recomputed from scratch via dsq2 on every call.
func referenceResidual(pg *pairGeometry, x, y, z float64) float64 {
	dix, diy, diz := pg.pi.X-x, pg.pi.Y-y, pg.pi.Z-z
	djx, djy, djz := pg.pj.X-x, pg.pj.Y-y, pg.pj.Z-z
	di := dix*dix + diy*diy + diz*diz
	dj := djx*djx + djy*djy + djz*djz
	e3 := math.Pi
	if di > 1e-12 && dj > 1e-12 {
		dot := dix*djx + diy*djy + diz*djz
		cosv := mathx.Clamp(dot/math.Sqrt(di*dj), -1, 1)
		e3 = math.Abs(math.Acos(cosv) - pg.g3)
	}
	ai := dsq2(x, z, pg.pi.X, pg.pi.Z)
	aj := dsq2(x, z, pg.pj.X, pg.pj.Z)
	aij := dsq2(pg.pi.X, pg.pi.Z, pg.pj.X, pg.pj.Z)
	ex := math.Pi
	if ai > 1e-12 && aj > 1e-12 {
		cosv := mathx.Clamp((ai+aj-aij)/(2*math.Sqrt(ai)*math.Sqrt(aj)), -1, 1)
		ex = math.Abs(math.Acos(cosv) - pg.gx)
	}
	e := e3 + 0.5*ex
	if e > residualCap {
		e = residualCap
	}
	return e
}

// TestResidualMatchesReference: optimized vs original residual, compared by
// exact float64 bits over a broad random sweep including degenerate
// (camera-on-point) positions.
func TestResidualMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 5000; trial++ {
		pi := mathx.Vec3{X: rng.Float64()*20 - 10, Y: rng.Float64() * 3, Z: rng.Float64()*20 - 10}
		pj := mathx.Vec3{X: rng.Float64()*20 - 10, Y: rng.Float64() * 3, Z: rng.Float64()*20 - 10}
		pg := newPairGeometry(rng.Float64(), rng.Float64()*2, pi, pj)
		var x, y, z float64
		if trial%17 == 0 {
			x, y, z = pi.X, pi.Y, pi.Z // degenerate: zero range to point i
		} else {
			x, y, z = rng.Float64()*24-12, rng.Float64()*4, rng.Float64()*24-12
		}
		got := pg.residual(x, y, z)
		want := referenceResidual(&pg, x, y, z)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: residual %x (%v) != reference %x (%v)",
				trial, math.Float64bits(got), got, math.Float64bits(want), want)
		}
	}
}

// referenceLocalize mirrors Localize's synchronous-generation DE exactly —
// the same RNG draw order, same clamping, same selection — but evaluates
// every trial in full (no early abort) with referenceResidual, serially.
func referenceLocalize(corr []Correspondence, intr Intrinsics, lo, hi mathx.Vec3, opt Options) Result {
	rng := rand.New(rand.NewSource(opt.Seed))
	cx, cy := float64(intr.W)/2, float64(intr.H)/2
	focal := cx / math.Tan(intr.FovX/2)
	ray := func(px, py float64) mathx.Vec3 {
		return mathx.Vec3{X: (px - cx) / focal, Y: -(py - cy) / focal, Z: 1}.Normalize()
	}
	var pairs []pairGeometry
	for i := 0; i < len(corr); i++ {
		ri := ray(corr[i].Px, corr[i].Py)
		gi := gamma(corr[i].Px, cx, intr.FovX, float64(intr.W))
		for j := i + 1; j < len(corr); j++ {
			rj := ray(corr[j].Px, corr[j].Py)
			gj := gamma(corr[j].Px, cx, intr.FovX, float64(intr.W))
			pairs = append(pairs, newPairGeometry(
				math.Abs(gi-gj),
				math.Acos(mathx.Clamp(ri.Dot(rj), -1, 1)),
				corr[i].P,
				corr[j].P,
			))
		}
	}
	if opt.MaxPairs > 0 && len(pairs) > opt.MaxPairs {
		rng.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
		pairs = pairs[:opt.MaxPairs]
	}
	objective := func(v [3]float64) float64 {
		var s float64
		for k := range pairs {
			s += referenceResidual(&pairs[k], v[0], v[1], v[2])
		}
		return s
	}
	span := [3]float64{hi.X - lo.X, hi.Y - lo.Y, hi.Z - lo.Z}
	lov := [3]float64{lo.X, lo.Y, lo.Z}
	evals := 0
	pop := make([][3]float64, opt.PopSize)
	cost := make([]float64, opt.PopSize)
	for i := range pop {
		pop[i] = [3]float64{
			lov[0] + rng.Float64()*span[0],
			lov[1] + rng.Float64()*span[1],
			lov[2] + rng.Float64()*span[2],
		}
		cost[i] = objective(pop[i])
	}
	evals += opt.PopSize
	trials := make([][3]float64, opt.PopSize)
	for iter := 0; iter < opt.MaxIterations; iter++ {
		for i := range pop {
			a, b, c := rng.Intn(opt.PopSize), rng.Intn(opt.PopSize), rng.Intn(opt.PopSize)
			var trial [3]float64
			jrand := rng.Intn(3)
			for d := 0; d < 3; d++ {
				if d == jrand || rng.Float64() < opt.CR {
					trial[d] = pop[a][d] + opt.F*(pop[b][d]-pop[c][d])
				} else {
					trial[d] = pop[i][d]
				}
				trial[d] = mathx.Clamp(trial[d], lov[d], lov[d]+span[d])
			}
			trials[i] = trial
		}
		evals += opt.PopSize
		for i := range pop {
			if tc := objective(trials[i]); tc < cost[i] {
				pop[i], cost[i] = trials[i], tc
			}
		}
		if opt.Tol > 0 {
			var mean float64
			for _, c := range cost {
				mean += c
			}
			mean /= float64(len(cost))
			var s2 float64
			for _, c := range cost {
				d := c - mean
				s2 += d * d
			}
			if math.Sqrt(s2/float64(len(cost))) <= opt.Tol*math.Abs(mean) {
				break
			}
		}
	}
	best := 0
	for i := 1; i < opt.PopSize; i++ {
		if cost[i] < cost[best] {
			best = i
		}
	}
	pos := mathx.Vec3{X: pop[best][0], Y: pop[best][1], Z: pop[best][2]}
	return Result{
		Position: pos,
		Residual: cost[best] / float64(len(pairs)),
		Evals:    evals,
		Yaw:      EstimateYaw(corr, intr, pos),
	}
}

// identityScenario builds a deterministic solvable correspondence set.
func identityScenario(seed int64, n int) ([]Correspondence, Intrinsics, mathx.Vec3, mathx.Vec3) {
	rng := rand.New(rand.NewSource(seed))
	intr := Intrinsics{W: 200, H: 150, FovX: 1.1, FovY: 0.85}
	corr := make([]Correspondence, n)
	for i := range corr {
		corr[i] = Correspondence{
			Px: rng.Float64() * 200,
			Py: rng.Float64() * 150,
			P:  mathx.Vec3{X: rng.Float64() * 8, Y: rng.Float64() * 3, Z: rng.Float64() * 6},
		}
	}
	return corr, intr, mathx.Vec3{X: -1, Y: 0, Z: -1}, mathx.Vec3{X: 9, Y: 3.5, Z: 7}
}

// identityOptions: a deadline-free fixed-seed configuration (a wall-clock
// budget would make the generation count timing-dependent).
func identityOptions(workers int) Options {
	opt := DefaultOptions()
	opt.Deadline = 0
	opt.MaxIterations = 40
	opt.Workers = workers
	return opt
}

// TestLocalizeMatchesReferenceSolver: the production solver — precomputed
// pair geometry, early-abort objective, worker-pool evaluation — must agree
// bit for bit with the full-evaluation reference at several seeds and sizes.
func TestLocalizeMatchesReferenceSolver(t *testing.T) {
	for _, tc := range []struct {
		seed    int64
		n       int
		workers int
	}{
		{3, 12, 1},
		{4, 20, 1},
		{5, 30, 4},
		{6, 9, 0},
	} {
		corr, intr, lo, hi := identityScenario(tc.seed, tc.n)
		opt := identityOptions(tc.workers)
		opt.Seed = tc.seed * 11
		got, err := Localize(corr, intr, lo, hi, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", tc.seed, err)
		}
		want := referenceLocalize(corr, intr, lo, hi, opt)
		if got != want {
			t.Fatalf("seed %d workers %d: optimized %+v != reference %+v",
				tc.seed, tc.workers, got, want)
		}
	}
}

// TestLocalizeWorkerCountBitIdentical: any worker count must produce the
// exact same Result for a fixed seed.
func TestLocalizeWorkerCountBitIdentical(t *testing.T) {
	corr, intr, lo, hi := identityScenario(9, 24)
	base, err := Localize(corr, intr, lo, hi, identityOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 8} {
		got, err := Localize(corr, intr, lo, hi, identityOptions(workers))
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Fatalf("workers=%d diverged: %+v != %+v", workers, got, base)
		}
	}
}

// TestLocalizeDeadlineStillBounds: the synchronous-generation loop must
// still honor the wall-clock budget of the paper's time-bounded solve.
func TestLocalizeDeadlineStillBounds(t *testing.T) {
	corr, intr, lo, hi := identityScenario(13, 40)
	opt := DefaultOptions()
	opt.MaxIterations = 1 << 20
	opt.Deadline = 30 * time.Millisecond
	start := time.Now()
	if _, err := Localize(corr, intr, lo, hi, opt); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline-bounded solve ran %v", elapsed)
	}
}
