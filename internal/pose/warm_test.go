package pose

// Warm-start coverage: the prior fields must be inert at their zero value
// (the bit-identity contract the tracking subsystem's cold fallback relies
// on), a disjoint prior must be ignored, and a good prior must converge in
// a fraction of the cold generations with no accuracy loss.

import (
	"math"
	"testing"

	"visualprint/internal/mathx"
)

// TestLocalizeZeroPriorBitIdentical: PriorRadius == 0 must leave the solve
// byte-for-byte identical to the pre-warm-start solver, even with PriorPos
// set — proven against the verbatim reference mirror, which has no prior
// code at all.
func TestLocalizeZeroPriorBitIdentical(t *testing.T) {
	for _, seed := range []int64{3, 9, 21} {
		corr, intr, lo, hi := identityScenario(seed, 18)
		opt := identityOptions(1)
		opt.Seed = seed * 7
		opt.PriorPos = mathx.Vec3{X: 4, Y: 1.5, Z: 3} // must be ignored
		got, err := Localize(corr, intr, lo, hi, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := referenceLocalize(corr, intr, lo, hi, opt)
		if got != want {
			t.Fatalf("seed %d: zero-prior solve diverged from reference: %+v != %+v",
				seed, got, want)
		}
	}
}

// TestLocalizeDisjointPriorIgnored: a prior box that does not intersect the
// search box must be ignored entirely — the solve must match the no-prior
// solve bit for bit.
func TestLocalizeDisjointPriorIgnored(t *testing.T) {
	corr, intr, lo, hi := identityScenario(5, 16)
	opt := identityOptions(1)
	base, err := Localize(corr, intr, lo, hi, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.PriorPos = mathx.Vec3{X: 1e6, Y: 1e6, Z: 1e6}
	opt.PriorRadius = 0.5
	got, err := Localize(corr, intr, lo, hi, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Fatalf("disjoint prior changed the solve: %+v != %+v", got, base)
	}
}

// warmScenario builds a geometrically consistent correspondence set: 3D
// points in a wall-like slab, pixels their true pinhole projections from a
// known camera — the same shape as the bench workload, so the objective has
// a near-zero optimum and the Tol convergence stop is meaningful.
func warmScenario(n int) ([]Correspondence, Intrinsics, mathx.Vec3, mathx.Vec3, mathx.Vec3) {
	intr := Intrinsics{W: 200, H: 150, FovX: 1.1, FovY: 0.85}
	cam := mathx.Vec3{X: 4, Y: 1.4, Z: 2}
	cx, cy := float64(intr.W)/2, float64(intr.H)/2
	focal := cx / math.Tan(intr.FovX/2)
	corr := make([]Correspondence, n)
	for i := range corr {
		fi := float64(i)
		p := mathx.Vec3{
			X: 1.5 + 5*math.Mod(fi*0.61803398875, 1),
			Y: 0.8 + 1.4*math.Mod(fi*0.3819660113, 1),
			Z: 7.1 + 0.8*math.Mod(fi*0.2360679775, 1),
		}
		d := p.Sub(cam)
		corr[i] = Correspondence{
			Px: cx + focal*d.X/d.Z,
			Py: cy - focal*d.Y/d.Z,
			P:  p,
		}
	}
	return corr, intr, mathx.Vec3{X: -1, Y: 0, Z: -1}, mathx.Vec3{X: 9, Y: 3.5, Z: 9}, cam
}

// TestLocalizeWarmConvergesFaster: with a prior near the true camera, the
// solve must reach an equal-or-better answer in at most half the cold
// solve's generations (Evals counts PopSize per generation).
func TestLocalizeWarmConvergesFaster(t *testing.T) {
	corr, intr, lo, hi, cam := warmScenario(24)
	opt := DefaultOptions()
	opt.Deadline = 0
	opt.Workers = 1
	cold, err := Localize(corr, intr, lo, hi, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.PriorPos = mathx.Vec3{X: cam.X + 0.2, Y: cam.Y - 0.1, Z: cam.Z + 0.25}
	opt.PriorRadius = 0.75
	opt.MinResidual = 3e-4
	warm, err := Localize(corr, intr, lo, hi, opt)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Evals*2 > cold.Evals {
		t.Fatalf("warm solve used %d evals, cold %d (want <= 50%%)", warm.Evals, cold.Evals)
	}
	coldErr := cold.Position.Sub(cam)
	warmErr := warm.Position.Sub(cam)
	ce, we := math.Sqrt(coldErr.Dot(coldErr)), math.Sqrt(warmErr.Dot(warmErr))
	if we > ce+0.05 {
		t.Fatalf("warm solve error %.3f m worse than cold %.3f m", we, ce)
	}
	if we > 0.5 {
		t.Fatalf("warm solve landed %.3f m from the true camera", we)
	}
}
