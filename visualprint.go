// Package visualprint is a Go implementation of VisualPrint ("Low
// Bandwidth Offload for Mobile AR", CoNEXT 2016): cloud-offloaded visual
// fingerprinting that uploads only the most globally-unique image
// keypoints, cutting mobile AR offload bandwidth by an order of magnitude
// while matching whole-image accuracy.
//
// The package exposes the full system:
//
//   - Procedural indoor worlds and a camera/renderer substituting for the
//     paper's real venues and Tango hardware (NewOfficeWorld, Render).
//   - SIFT keypoint extraction (ExtractKeypoints).
//   - The uniqueness oracle — locality-sensitive counting Bloom filters —
//     that ranks keypoints by global uniqueness (Oracle, SelectUnique).
//   - Simulated wardriving with dead-reckoning drift and ICP correction
//     (Wardrive, CorrectDrift).
//   - The cloud service and its TCP client (NewServer, Connect), plus a
//     single-process Pipeline for programmatic use.
//
// See the examples directory for runnable end-to-end scenarios and
// DESIGN.md / EXPERIMENTS.md for the paper reproduction map.
package visualprint

import (
	"visualprint/internal/core"
	"visualprint/internal/icp"
	"visualprint/internal/imaging"
	"visualprint/internal/mathx"
	"visualprint/internal/pose"
	"visualprint/internal/scene"
	"visualprint/internal/server"
	"visualprint/internal/sift"
	"visualprint/internal/wardrive"
)

// Re-exported substrate types. These aliases form the public API surface of
// the internal packages; downstream code imports only this package.
type (
	// Vec3 is a 3D vector (world coordinates are meters; +Y is up).
	Vec3 = mathx.Vec3
	// World is a procedural indoor venue.
	World = scene.World
	// VenueSpec parameterizes a procedural venue.
	VenueSpec = scene.VenueSpec
	// Camera is a pinhole camera with a 6-DoF pose.
	Camera = scene.Camera
	// Frame is a rendered grayscale image with per-pixel depth.
	Frame = scene.Frame
	// POI is a point of interest in a world.
	POI = scene.POI
	// Image is a float32 grayscale image.
	Image = imaging.Gray
	// Keypoint is a detected, described SIFT feature.
	Keypoint = sift.Keypoint
	// Descriptor is a 128-byte SIFT descriptor.
	Descriptor = sift.Descriptor
	// Oracle is the uniqueness oracle (the paper's core contribution).
	Oracle = core.Oracle
	// OracleParams configures an Oracle.
	OracleParams = core.Params
	// Snapshot is one wardriving capture.
	Snapshot = wardrive.Snapshot
	// WardriveConfig controls a simulated wardriving session.
	WardriveConfig = wardrive.Config
	// Mapping is a keypoint-to-3D-position record ingested by the server.
	Mapping = server.Mapping
	// LocateResult is the server's localization answer.
	LocateResult = server.LocateResult
	// Intrinsics describes a query camera for localization.
	Intrinsics = pose.Intrinsics
	// SiftConfig tunes the keypoint detector.
	SiftConfig = sift.Config
)

// POI kinds, re-exported from the scene package.
const (
	POIUnique   = scene.POIUnique
	POIRepeated = scene.POIRepeated
	POIPlain    = scene.POIPlain
)

// NewOfficeWorld builds the paper's office evaluation venue (50 x 20 m).
func NewOfficeWorld(seed uint32) *World { return scene.BuildOffice(seed) }

// NewCafeteriaWorld builds the cafeteria venue (50 x 15 m).
func NewCafeteriaWorld(seed uint32) *World { return scene.BuildCafeteria(seed) }

// NewGroceryWorld builds the grocery venue (80 x 50 m).
func NewGroceryWorld(seed uint32) *World { return scene.BuildGrocery(seed) }

// NewGalleryWorld builds an art-gallery venue (the paper's introductory
// example: one-of-a-kind paintings over checkerboard floors).
func NewGalleryWorld(seed uint32) *World { return scene.BuildGallery(seed) }

// BuildWorld constructs a venue from an arbitrary spec.
func BuildWorld(spec VenueSpec) *World { return scene.Build(spec) }

// NewCamera returns a smartphone-like camera rendering w x h frames.
func NewCamera(w, h int) Camera { return scene.DefaultCamera(w, h) }

// CameraFacing places a camera in front of a POI, looking at it.
func CameraFacing(w *World, poi POI, dist, yawOff, pitchOff float64, imgW, imgH int) Camera {
	return scene.CameraFacing(w, poi, dist, yawOff, pitchOff, imgW, imgH)
}

// Render draws the world from cam, returning image and depth.
func Render(w *World, cam Camera) (*Frame, error) { return scene.Render(w, cam) }

// DefaultSiftConfig returns the standard SIFT parameterization.
func DefaultSiftConfig() SiftConfig { return sift.DefaultConfig() }

// ExtractKeypoints runs SIFT on an image, strongest keypoints first.
func ExtractKeypoints(img *Image, cfg SiftConfig) []Keypoint {
	return sift.Detect(img, cfg)
}

// BlurScore returns the variance-of-Laplacian sharpness of an image. The
// client pipeline discards frames scoring below a threshold ("a quick check
// on each frame to detect blur, discarding such frames") — blurred frames
// lack the features needed to match on the server.
func BlurScore(img *Image) float64 { return imaging.BlurScore(img) }

// MotionBlur synthesizes linear motion blur of the given pixel length, for
// tests and handheld-capture simulations.
func MotionBlur(img *Image, length int) *Image { return imaging.MotionBlur(img, length) }

// OracleDiff computes a compressed incremental update from an old oracle
// snapshot to a newer one; ApplyOracleDiff patches a client copy in place.
// This implements the refresh path the paper leaves as future work.
func OracleDiff(old, cur *Oracle) ([]byte, error)  { return core.Diff(old, cur) }
func ApplyOracleDiff(o *Oracle, diff []byte) error { return core.ApplyDiff(o, diff) }

// NewOracle creates an empty uniqueness oracle. Use DefaultOracleParams for
// the paper's 2.5M-descriptor sizing or ScaledOracleParams for simulated
// venues.
func NewOracle(p OracleParams) (*Oracle, error) { return core.New(p) }

// DefaultOracleParams is the paper's configuration (L=10, M=7, W=500, K=8;
// ~160 MB of filters sized for 2.5M descriptors).
func DefaultOracleParams() OracleParams { return core.DefaultParams() }

// ScaledOracleParams is a smaller configuration suitable for the simulated
// venues and tests (tens of thousands of descriptors).
func ScaledOracleParams() OracleParams { return core.TestParams() }

// Wardrive walks a venue with the simulated Tango rig and returns the
// captured snapshots (keypoints, 3D positions, depth clouds, drifted and
// true poses).
func Wardrive(w *World, cfg WardriveConfig) ([]Snapshot, error) {
	return wardrive.Walk(w, cfg)
}

// DefaultWardriveConfig returns a wardriving configuration for the
// simulated venues.
func DefaultWardriveConfig() WardriveConfig { return wardrive.DefaultConfig() }

// CorrectDrift merges the snapshots' depth clouds with ICP and applies the
// resulting corrections to every keypoint observation, mutating snaps in
// place — the paper's drift post-processing. It returns the mean keypoint
// position error before and after correction.
func CorrectDrift(snaps []Snapshot) (before, after float64, err error) {
	clouds := make([][]Vec3, len(snaps))
	for i := range snaps {
		clouds[i] = snaps[i].Cloud
	}
	tfs, err := icp.CorrectSequence(clouds, icp.DefaultOptions())
	if err != nil {
		return 0, 0, err
	}
	before, _ = wardrive.PoseError(snaps)
	for i := range snaps {
		tf := tfs[i]
		for j := range snaps[i].Obs {
			snaps[i].Obs[j].Est = tf.Apply(snaps[i].Obs[j].Est)
		}
		snaps[i].Cloud = tf.ApplyAll(snaps[i].Cloud)
	}
	after, _ = wardrive.PoseError(snaps)
	return before, after, nil
}

// MappingsFrom flattens snapshots into server-ingestible mappings using the
// (possibly drift-corrected) estimated positions.
func MappingsFrom(snaps []Snapshot) []Mapping {
	var ms []Mapping
	for i := range snaps {
		for _, o := range snaps[i].Obs {
			m := Mapping{Pos: o.Est}
			copy(m.Desc[:], o.Keypoint.Desc[:])
			ms = append(ms, m)
		}
	}
	return ms
}

// IntrinsicsOf extracts localization intrinsics from a camera.
func IntrinsicsOf(cam Camera) Intrinsics {
	return Intrinsics{W: cam.W, H: cam.H, FovX: cam.FovX, FovY: cam.FovY()}
}
