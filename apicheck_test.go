package visualprint

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// apiUpdate regenerates testdata/api.txt from the current source instead of
// diffing against it:
//
//	go test . -run TestPublicAPISnapshot -update-api
var apiUpdate = flag.Bool("update-api", false, "rewrite testdata/api.txt with the current exported API")

const apiSnapshotFile = "testdata/api.txt"

// TestPublicAPISnapshot is the API-compatibility gate: the exported surface
// of package visualprint is rendered to a canonical text form and diffed
// against the checked-in snapshot. Any drift — a removed function, a changed
// signature, a renamed field — fails `make verify` until the snapshot is
// deliberately regenerated with -update-api and the change reviewed as an
// intentional API break (or addition).
func TestPublicAPISnapshot(t *testing.T) {
	got := renderPublicAPI(t)
	if *apiUpdate {
		if err := os.MkdirAll(filepath.Dir(apiSnapshotFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiSnapshotFile, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d declarations)", apiSnapshotFile, strings.Count(got, "\n"))
		return
	}
	want, err := os.ReadFile(apiSnapshotFile)
	if err != nil {
		t.Fatalf("missing API snapshot (run `go test . -run TestPublicAPISnapshot -update-api` to create it): %v", err)
	}
	if got == string(want) {
		return
	}
	gotL, wantL := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	gotSet, wantSet := map[string]bool{}, map[string]bool{}
	for _, l := range gotL {
		gotSet[l] = true
	}
	for _, l := range wantL {
		wantSet[l] = true
	}
	var diff []string
	for _, l := range wantL {
		if l != "" && !gotSet[l] {
			diff = append(diff, "- "+l)
		}
	}
	for _, l := range gotL {
		if l != "" && !wantSet[l] {
			diff = append(diff, "+ "+l)
		}
	}
	t.Fatalf("public API drifted from %s (-removed/changed +added):\n%s\n\nIf intentional, regenerate with: go test . -run TestPublicAPISnapshot -update-api",
		apiSnapshotFile, strings.Join(diff, "\n"))
}

// renderPublicAPI parses the package in the current directory and returns a
// sorted, one-declaration-per-line rendering of everything exported:
// funcs and methods as signatures, types with their exported fields, and
// const/var names with declared types.
func renderPublicAPI(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["visualprint"]
	if !ok {
		t.Fatalf("package visualprint not found (got %v)", pkgs)
	}

	var lines []string
	add := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	render := func(node any) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, node); err != nil {
			t.Fatal(err)
		}
		// Collapse to one line so each declaration is exactly one snapshot
		// entry and diffs stay per-declaration.
		return strings.Join(strings.Fields(buf.String()), " ")
	}

	var files []string
	for name := range pkg.Files {
		files = append(files, name)
	}
	sort.Strings(files)
	for _, name := range files {
		for _, decl := range pkg.Files[name].Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil && !exportedReceiver(d.Recv) {
					continue
				}
				fn := *d
				fn.Body = nil
				fn.Doc = nil
				add("%s", render(&fn))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.ValueSpec:
						for _, id := range s.Names {
							if !id.IsExported() {
								continue
							}
							if s.Type != nil {
								add("%s %s %s", d.Tok, id.Name, render(s.Type))
							} else {
								add("%s %s", d.Tok, id.Name)
							}
						}
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						ts := *s
						ts.Doc = nil
						ts.Comment = nil
						ts.Type = stripUnexportedFields(ts.Type)
						eq := ""
						if ts.Assign != token.NoPos {
							eq = "= "
						}
						add("type %s %s%s", ts.Name.Name, eq, render(ts.Type))
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// exportedReceiver reports whether a method's receiver type is exported
// (methods on unexported types are not part of the public API unless the
// type escapes through an exported alias — which the snapshot of the alias
// itself covers).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if idx, ok := typ.(*ast.IndexExpr); ok { // generic receiver
		typ = idx.X
	}
	id, ok := typ.(*ast.Ident)
	return ok && id.IsExported()
}

// stripUnexportedFields returns a copy of a struct type without its
// unexported fields, so internal layout changes don't churn the snapshot.
// Non-struct types pass through unchanged.
func stripUnexportedFields(typ ast.Expr) ast.Expr {
	st, ok := typ.(*ast.StructType)
	if !ok || st.Fields == nil {
		return typ
	}
	kept := &ast.FieldList{}
	for _, f := range st.Fields.List {
		nf := *f
		nf.Doc = nil
		nf.Comment = nil
		nf.Tag = nil
		if len(f.Names) == 0 {
			// Embedded field: part of the API iff the embedded type is.
			e := f.Type
			if star, ok := e.(*ast.StarExpr); ok {
				e = star.X
			}
			if sel, ok := e.(*ast.SelectorExpr); ok {
				if sel.Sel.IsExported() {
					kept.List = append(kept.List, &nf)
				}
				continue
			}
			if id, ok := e.(*ast.Ident); ok && id.IsExported() {
				kept.List = append(kept.List, &nf)
			}
			continue
		}
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(names) == 0 {
			continue
		}
		nf.Names = names
		kept.List = append(kept.List, &nf)
	}
	out := *st
	out.Fields = kept
	return &out
}
