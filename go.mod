module visualprint

go 1.22
