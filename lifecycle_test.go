package visualprint

import (
	"context"
	"errors"
	"testing"
	"time"
)

// testMappings builds a small deterministic batch for ingest tests.
func testMappings(n int, tag byte) []Mapping {
	ms := make([]Mapping, n)
	for i := range ms {
		ms[i].Desc[0] = tag
		ms[i].Desc[1] = byte(i)
		ms[i].Pos = Vec3{X: float64(i), Y: 1, Z: float64(int(tag))}
	}
	return ms
}

// TestShutdownFlushesWAL exercises the public graceful-stop contract: a
// server built with options, fed over the network by an options-built
// client, then drained with Shutdown — after which a fresh server opening
// the same data directory must recover every acknowledged mapping.
func TestShutdownFlushesWAL(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServer(DefaultServerConfig(),
		WithQueueDepth(64),
		WithDrainTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.OpenData(dir); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	c, err := Connect(addr.String(),
		WithDialTimeout(5*time.Second),
		WithRetryPolicy(DefaultRetryPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	total, err := c.Ingest(ctx, testMappings(n, 1))
	if err != nil {
		t.Fatal(err)
	}
	if total != n {
		t.Fatalf("ingest ack %d, want %d", total, n)
	}
	c.Close()

	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// A request after Shutdown must fail: the listener is gone.
	if _, err := Connect(addr.String(), WithDialTimeout(time.Second)); err == nil {
		t.Fatal("Connect succeeded against a shut-down server")
	}

	reopened, err := NewServer(DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := reopened.OpenData(dir); err != nil {
		t.Fatalf("reopen after Shutdown: %v", err)
	}
	defer reopened.Close()
	if got := reopened.Database().Len(); got != n {
		t.Fatalf("recovered %d mappings after Shutdown, want %d", got, n)
	}
}

// TestLifecycleSentinelsExported: the request-lifecycle sentinels are part
// of the public API and keep their stdlib identities.
func TestLifecycleSentinelsExported(t *testing.T) {
	if !errors.Is(ErrDeadlineExceeded, context.DeadlineExceeded) {
		t.Error("ErrDeadlineExceeded does not match context.DeadlineExceeded")
	}
	if !errors.Is(ErrCanceled, context.Canceled) {
		t.Error("ErrCanceled does not match context.Canceled")
	}
	for _, e := range []error{ErrOverloaded, ErrShuttingDown} {
		if e == nil {
			t.Error("nil lifecycle sentinel")
		}
	}
}

// TestLocalizeContextCancel: the public context-first entry point stops a
// localization mid-pipeline.
func TestLocalizeContextCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is slow")
	}
	w := smallWorld()
	p, err := NewPipeline(w, DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wardrive(fastWardrive(), false); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pois := w.POIsOfKind(POIUnique)
	cam := CameraFacing(w, pois[0], 3.0, 0.2, 0, 180, 135)
	_, _, lerr := p.LocalizeContext(ctx, cam)
	if !errors.Is(lerr, ErrCanceled) || !errors.Is(lerr, context.Canceled) {
		t.Fatalf("got %v, want ErrCanceled matching context.Canceled", lerr)
	}
}
