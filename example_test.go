package visualprint_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"visualprint"
)

// ExampleNewPipeline shows the single-process end-to-end flow: build a
// venue, wardrive it, localize a photograph using only the most-unique
// keypoints.
func ExampleNewPipeline() {
	world := visualprint.NewGalleryWorld(7)
	pipeline, err := visualprint.NewPipeline(world, visualprint.DefaultServerConfig())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := pipeline.Wardrive(visualprint.DefaultWardriveConfig(), true); err != nil {
		log.Fatal(err)
	}
	poi := world.POIsOfKind(visualprint.POIUnique)[0]
	cam := visualprint.CameraFacing(world, poi, 3, 0.2, 0, 240, 180)
	res, stats, err := pipeline.Localize(cam)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded %d keypoints (%d bytes), position error %.1fm\n",
		stats.UploadedKeypoints, stats.UploadBytes, res.Position.Dist(cam.Pos))
}

// ExampleOracle_SelectUnique shows direct use of the uniqueness oracle: a
// repeated "door knob" descriptor ranks below one-of-a-kind descriptors.
func ExampleOracle_SelectUnique() {
	oracle, err := visualprint.NewOracle(visualprint.ScaledOracleParams())
	if err != nil {
		log.Fatal(err)
	}
	doorKnob := make([]byte, 128)
	doorKnob[10] = 200
	for i := 0; i < 100; i++ { // the same fixture seen in every room
		oracle.Insert(doorKnob)
	}
	painting := make([]byte, 128)
	painting[90] = 180
	oracle.Insert(painting) // seen exactly once

	common, _ := oracle.Uniqueness(doorKnob)
	rare, _ := oracle.Uniqueness(painting)
	fmt.Println(common > rare)
	// Output: true
}

// ExampleServer shows the networked deployment: a server, a wardriving
// uploader, and a querying client over TCP.
func ExampleServer() {
	srv, err := visualprint.NewServer(visualprint.DefaultServerConfig())
	if err != nil {
		log.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	client, err := visualprint.Connect(addr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Wardriving side: ingest keypoint-to-3D mappings.
	ms := make([]visualprint.Mapping, 3)
	for i := range ms {
		ms[i].Desc[0] = byte(i)
	}
	total, err := client.Ingest(context.Background(), ms)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(total)
	// Output: 3
}

// ExampleLink_SustainableFPS reproduces Figure 2's core computation: how
// many frames per second an uplink sustains at a given encoded size.
func ExampleLink_SustainableFPS() {
	lte := visualprint.Link{UplinkMbps: 2, RTT: 40 * time.Millisecond}
	h264Frame := int64(25_000) // ~25 KB per 1080p H.264 frame
	fmt.Printf("%.0f\n", lte.SustainableFPS(h264Frame))
	// Output: 10
}
