package visualprint

import (
	"time"

	"visualprint/internal/codec"
	"visualprint/internal/netsim"
	"visualprint/internal/power"
	"visualprint/internal/session"
)

// Encoding identifies a frame encoding for whole-frame offload.
type Encoding = codec.Encoding

// Frame encodings (Figure 2's comparison set).
const (
	EncodingH264 = codec.EncodingH264
	EncodingJPEG = codec.EncodingJPEG
	EncodingPNG  = codec.EncodingPNG
	EncodingRAW  = codec.EncodingRAW
)

// EncodeFrame serializes a frame image under the given encoding (JPEG
// quality 0 selects the default). H.264 yields a placeholder of the modeled
// size.
func EncodeFrame(img *Image, enc Encoding, jpegQuality int) ([]byte, error) {
	return codec.EncodeFrame(img, enc, jpegQuality)
}

// DecodeFrame decodes RAW, PNG or JPEG frames produced by EncodeFrame.
func DecodeFrame(data []byte, enc Encoding) (*Image, error) {
	return codec.DecodeFrame(data, enc)
}

// MarshalKeypoints serializes keypoints in the client upload wire format
// (144 bytes per keypoint).
func MarshalKeypoints(kps []Keypoint) []byte { return codec.MarshalKeypoints(kps) }

// UnmarshalKeypoints parses MarshalKeypoints output.
func UnmarshalKeypoints(data []byte) ([]Keypoint, error) {
	return codec.UnmarshalKeypoints(data)
}

// Gzip compresses a payload with compress/gzip — the paper's fingerprint
// and feature-upload compression experiments (Figure 5).
func Gzip(data []byte) ([]byte, error) { return codec.Gzip(data) }

// Gunzip reverses Gzip.
func Gunzip(data []byte) ([]byte, error) { return codec.Gunzip(data) }

// Link models the wireless uplink between client and cloud.
type Link = netsim.Link

// UploadEvent is one completed upload in a simulated transfer trace.
type UploadEvent = netsim.UploadEvent

// TraceUploads simulates a client continuously uploading payloads over a
// link (Figure 14's cumulative-upload traces).
func TraceUploads(l Link, duration, interval time.Duration, sizes func(i int) int64) ([]UploadEvent, error) {
	return netsim.Trace(l, duration, interval, sizes)
}

// SessionConfig describes a simulated continuous capture session (the
// client app's realtime loop: blur gating, stale-frame dropping, pipelined
// upload).
type SessionConfig = session.Config

// SessionResult summarizes a simulated capture session.
type SessionResult = session.Result

// RunSession simulates the client's continuous capture loop.
func RunSession(cfg SessionConfig) (*SessionResult, error) { return session.Run(cfg) }

// PowerModel holds component power draws for the Figure 18 energy model.
type PowerModel = power.Model

// PowerWorkload describes a client configuration's component duty cycles.
type PowerWorkload = power.Workload

// DefaultPowerModel returns the calibrated smartphone power model.
func DefaultPowerModel() PowerModel { return power.Default() }

// PowerDisplayOnly is the Figure 18 baseline: screen on, nothing else.
func PowerDisplayOnly() PowerWorkload { return power.DisplayOnly() }

// PowerCameraPreview adds a live camera preview to the display baseline.
func PowerCameraPreview() PowerWorkload { return power.CameraPreview() }

// PowerVisualPrintFull is the complete VisualPrint client loop: camera,
// SIFT extraction, oracle filtering, and fingerprint upload.
func PowerVisualPrintFull() PowerWorkload { return power.VisualPrintFull() }

// PowerFrameOffload is the whole-frame-upload alternative VisualPrint is
// compared against.
func PowerFrameOffload() PowerWorkload { return power.FrameOffload() }

// PowerVisualPrintCompute isolates the on-device compute share of the
// VisualPrint loop (no radio).
func PowerVisualPrintCompute() PowerWorkload { return power.VisualPrintComputeOnly() }

// PowerVisualPrintUpload isolates the radio share of the VisualPrint loop
// (no extraction compute).
func PowerVisualPrintUpload() PowerWorkload { return power.VisualPrintUploadOnly() }

// VariableLink models an unpredictable wireless channel (Gilbert-Elliott
// good/bad states) — the latency variability the paper's introduction
// motivates VisualPrint with.
type VariableLink = netsim.VariableLink
