// Command rfprint applies the VisualPrint uniqueness oracle to a different
// high-dimensional sensory domain — wireless RF fingerprints — as the
// paper's conclusion proposes: "we believe that the VisualPrint approach
// can be productively reapplied in other high-dimensional sensory domains,
// such as wireless RF, auditory, and hyperspectral signatures."
//
// The synthetic workload: a building with many access points. Each location
// produces an RSSI vector (one byte-quantized signal strength per AP).
// Locations in open areas have distinctive multi-AP signatures (unique);
// long corridors repeat nearly identical signatures for many meters
// (common). The oracle, fed every wardriven RSSI vector, identifies which
// live measurements are worth uploading for a position fix — the same
// filter-by-global-uniqueness primitive, no code changes to internal/core.
//
//	go run ./examples/rfprint
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"visualprint"
)

const (
	numAPs    = 128 // matches the oracle's default descriptor dimensionality
	gridW     = 40  // building floor plan, meters
	gridD     = 20
	corridorZ = 10.0 // a corridor along X at this Z
)

// fade is deterministic per-(AP, location-cell) multipath fading: indoor
// signal strength varies tens of dB over meter scales due to reflections,
// which is exactly what makes open-area RF signatures location-unique.
func fade(ap, cx, cz int) float64 {
	h := uint64(ap)*1000003 ^ uint64(cx)*8191 ^ uint64(cz)*131071
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return (float64(h%1024)/1024 - 0.5) * 110 // +-55 quantized units
}

// rssiAt synthesizes the RSSI vector observed at (x, z): log-distance path
// loss plus multipath fading from each AP, byte-quantized. Points inside
// the corridor see a waveguide effect: fading depends only on the AP, not
// the position, so every corridor position repeats the same signature —
// the "ceiling tile" of the RF domain.
func rssiAt(x, z float64, aps [][2]float64, rng *rand.Rand) []byte {
	v := make([]byte, numAPs)
	inCorridor := math.Abs(z-corridorZ) < 1.5
	for i, ap := range aps {
		d := math.Hypot(x-ap[0], z-ap[1]) + 1
		rssi := 130 - 30*math.Log10(d) + rng.NormFloat64()*1.5
		if inCorridor {
			rssi = 120 + fade(i, 0, 0)*0.5 // waveguide: position-independent
		} else {
			rssi += fade(i, int(x), int(z))
		}
		if rssi < 0 {
			rssi = 0
		}
		if rssi > 255 {
			rssi = 255
		}
		v[i] = byte(rssi)
	}
	return v
}

func main() {
	rng := rand.New(rand.NewSource(42))
	aps := make([][2]float64, numAPs)
	for i := range aps {
		aps[i] = [2]float64{rng.Float64() * gridW, rng.Float64() * gridD}
	}

	oracle, err := visualprint.NewOracle(visualprint.ScaledOracleParams())
	if err != nil {
		log.Fatal(err)
	}

	// "Wardrive" the building: RSSI sample every meter.
	samples := 0
	for x := 0.5; x < gridW; x++ {
		for z := 0.5; z < gridD; z++ {
			if err := oracle.Insert(rssiAt(x, z, aps, rng)); err != nil {
				log.Fatal(err)
			}
			samples++
		}
	}
	fmt.Printf("RF wardrive: %d RSSI vectors over a %dx%d m floor, %d APs\n",
		samples, gridW, gridD, numAPs)

	// Live phase: score fresh measurements from open areas vs the corridor.
	score := func(x, z float64) uint32 {
		u, err := oracle.Uniqueness(rssiAt(x, z, aps, rng))
		if err != nil {
			log.Fatal(err)
		}
		return u
	}
	var open, corridor []float64
	for i := 0; i < 60; i++ {
		x := 1 + rng.Float64()*(gridW-2)
		open = append(open, float64(score(x, 3+rng.Float64()*4)))
		corridor = append(corridor, float64(score(x, corridorZ+rng.Float64()*0.8-0.4)))
	}
	sort.Float64s(open)
	sort.Float64s(corridor)
	fmt.Printf("oracle count, open areas:  median %.0f (distinctive signatures)\n", open[len(open)/2])
	fmt.Printf("oracle count, corridor:    median %.0f (waveguide-repeated signatures)\n", corridor[len(corridor)/2])
	if corridor[len(corridor)/2] > open[len(open)/2] {
		fmt.Println("=> the oracle flags corridor measurements as globally common:")
		fmt.Println("   a client would upload open-area fingerprints and skip corridor ones,")
		fmt.Println("   the same bandwidth filter VisualPrint applies to image keypoints.")
	} else {
		fmt.Println("=> unexpected: corridor did not rank as more common than open areas")
	}
}
