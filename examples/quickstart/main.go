// Command quickstart is the minimal end-to-end VisualPrint flow: build a
// venue, wardrive it, then localize a camera from a photograph using only
// the most-unique keypoints.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"visualprint"
)

func main() {
	// 1. A venue to fingerprint. The gallery preset is the paper's
	// introductory example: one-of-a-kind paintings over tiled floors.
	world := visualprint.NewGalleryWorld(7)
	fmt.Printf("venue %q: %d surfaces, %d points of interest\n",
		world.Name, len(world.Surfaces), len(world.POIs))

	// 2. Wardrive it (the simulated Tango walk) and ingest into the cloud
	// database. The pipeline wires world, server and oracle together.
	pipeline, err := visualprint.NewPipeline(world, visualprint.DefaultServerConfig())
	if err != nil {
		log.Fatal(err)
	}
	wd := visualprint.DefaultWardriveConfig()
	wd.ImageW, wd.ImageH = 200, 150
	n, err := pipeline.Wardrive(wd, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wardrive complete: %d keypoint-to-3D mappings ingested\n", n)
	fmt.Printf("oracle footprint: %.1f MB in RAM\n",
		float64(pipeline.Oracle.MemoryBytes())/1e6)

	// 3. A user photographs a painting from a new viewpoint.
	pois := world.POIsOfKind(visualprint.POIUnique)
	cam := visualprint.CameraFacing(world, pois[2], 3.0, 0.3, -0.05, 200, 150)

	res, stats, err := pipeline.Localize(cam)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %d keypoints extracted, %d uploaded (%.1f KB on the wire)\n",
		stats.ExtractedKeypoints, stats.UploadedKeypoints, float64(stats.UploadBytes)/1024)
	fmt.Printf("estimated position: (%.2f, %.2f, %.2f)\n",
		res.Position.X, res.Position.Y, res.Position.Z)
	fmt.Printf("true position:      (%.2f, %.2f, %.2f)\n",
		cam.Pos.X, cam.Pos.Y, cam.Pos.Z)
	fmt.Printf("localization error: %.2f m (%d matches after clustering)\n",
		res.Position.Dist(cam.Pos), res.Matched)
}
