// Command grocery simulates a continuous mobile-AR session in the grocery
// venue: a shopper streams queries while walking the aisles. It compares
// the cumulative uplink traffic of the VisualPrint fingerprint stream
// against conventional whole-frame offload over the same LTE-class link —
// the Figure 14 scenario — and prints the power budget of both
// configurations.
//
//	go run ./examples/grocery
package main

import (
	"fmt"
	"log"
	"time"

	"visualprint"
)

func main() {
	world := visualprint.NewGroceryWorld(5)
	pipeline, err := visualprint.NewPipeline(world, visualprint.DefaultServerConfig())
	if err != nil {
		log.Fatal(err)
	}
	wd := visualprint.DefaultWardriveConfig()
	wd.ImageW, wd.ImageH = 180, 135
	wd.StepMeters = 5
	wd.RowSpacing = 8
	n, err := pipeline.Wardrive(wd, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grocery store wardriven: %d mappings\n", n)

	// Measure one representative query of each kind.
	pois := world.POIsOfKind(visualprint.POIUnique)
	cam := visualprint.CameraFacing(world, pois[0], 3.5, 0.2, 0, 180, 135)
	fr, err := visualprint.Render(world, cam)
	if err != nil {
		log.Fatal(err)
	}
	framePNG, _ := visualprint.EncodeFrame(fr.Image, visualprint.EncodingPNG, 0)
	_, stats, err := pipeline.LocalizeFrame(fr)
	if err != nil {
		log.Fatal(err)
	}
	// The fingerprint is resolution-independent; the frame scales with the
	// camera sensor. Compare against a 1080p-equivalent frame.
	frameBytes := int64(float64(len(framePNG)) * float64(1920*1080) / float64(fr.Cam.W*fr.Cam.H))
	fmt.Printf("per query: fingerprint %.1f KB vs whole frame %.1f KB (1080p-equivalent)\n",
		float64(stats.UploadBytes)/1024, float64(frameBytes)/1024)

	// Continuous session over an LTE-class uplink: 1 query per second for
	// 70 seconds (the paper's Figure 14 window).
	link := visualprint.Link{UplinkMbps: 6, RTT: 40 * time.Millisecond}
	duration := 70 * time.Second
	vpTrace, err := visualprint.TraceUploads(link, duration, time.Second,
		func(int) int64 { return stats.UploadBytes })
	if err != nil {
		log.Fatal(err)
	}
	frameTrace, err := visualprint.TraceUploads(link, duration, time.Second,
		func(int) int64 { return frameBytes })
	if err != nil {
		log.Fatal(err)
	}
	vpTotal := vpTrace[len(vpTrace)-1].Cumulative
	frTotal := frameTrace[len(frameTrace)-1].Cumulative
	fmt.Printf("70 s session: VisualPrint %.2f MB, whole frames %.2f MB (%.1fx saving)\n",
		float64(vpTotal)/1e6, float64(frTotal)/1e6, float64(frTotal)/float64(vpTotal))

	// Realtime capture loop: 30 FPS camera, SIFT-bound processing, stale
	// frames dropped, occasional motion blur rejected before any work.
	sess, err := visualprint.RunSession(visualprint.SessionConfig{
		FPS:          30,
		Duration:     duration,
		ExtractTime:  80 * time.Millisecond,
		FilterTime:   5 * time.Millisecond,
		UploadBytes:  stats.UploadBytes,
		Link:         link,
		BlurredFrame: func(i int) bool { return i%20 < 3 }, // motion bursts
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capture loop: %d frames -> %d processed, %d stale, %d blurred (%.1f queries/s, freshness %v)\n",
		len(sess.Frames), sess.Processed, sess.Stale, sess.Blurred,
		sess.EffectiveQPS, sess.MeanFreshness.Round(time.Millisecond))

	// Power budget of both configurations (Figure 18's model).
	pm := visualprint.DefaultPowerModel()
	vpW, err := pm.Average(visualprint.PowerVisualPrintFull())
	if err != nil {
		log.Fatal(err)
	}
	frW, _ := pm.Average(visualprint.PowerFrameOffload())
	fmt.Printf("power: VisualPrint %.1f W vs frame offload %.1f W "+
		"(compute dominates; see the paper's limitations section)\n", vpW, frW)
}
