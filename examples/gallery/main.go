// Command gallery demonstrates the uniqueness oracle on the paper's
// motivating scenario: an art gallery where one-of-a-kind paintings coexist
// with checkerboard floors and fixtures repeated in every room. It shows
// how the oracle separates globally-unique keypoints (worth uploading) from
// repeated ones (discarded), and the bandwidth this saves versus shipping
// whole frames or all keypoints.
//
//	go run ./examples/gallery
package main

import (
	"fmt"
	"log"

	"visualprint"
)

func main() {
	world := visualprint.NewGalleryWorld(3)
	pipeline, err := visualprint.NewPipeline(world, visualprint.DefaultServerConfig())
	if err != nil {
		log.Fatal(err)
	}
	wd := visualprint.DefaultWardriveConfig()
	wd.ImageW, wd.ImageH = 200, 150
	if _, err := pipeline.Wardrive(wd, false); err != nil {
		log.Fatal(err)
	}
	oracle := pipeline.Oracle

	// Photograph a unique painting and a repeated-tile floor area, and
	// compare the oracle's uniqueness scores for their keypoints.
	sc := visualprint.DefaultSiftConfig()
	sc.ContrastThreshold = 0.02
	scoreView := func(poi visualprint.POI) (median uint32, kps []visualprint.Keypoint) {
		cam := visualprint.CameraFacing(world, poi, 2.5, 0.1, 0, 200, 150)
		fr, err := visualprint.Render(world, cam)
		if err != nil {
			log.Fatal(err)
		}
		kps = visualprint.ExtractKeypoints(fr.Image, sc)
		var scores []uint32
		for i := range kps {
			u, err := oracle.Uniqueness(kps[i].Desc[:])
			if err != nil {
				log.Fatal(err)
			}
			scores = append(scores, u)
		}
		if len(scores) == 0 {
			return 0, kps
		}
		// median
		for i := 1; i < len(scores); i++ {
			for j := i; j > 0 && scores[j] < scores[j-1]; j-- {
				scores[j], scores[j-1] = scores[j-1], scores[j]
			}
		}
		return scores[len(scores)/2], kps
	}

	paintings := world.POIsOfKind(visualprint.POIUnique)
	floors := world.POIsOfKind(visualprint.POIPlain)
	pm, pk := scoreView(paintings[0])
	fm, fk := scoreView(floors[0])
	fmt.Println("oracle uniqueness scores (lower = more unique = worth uploading):")
	fmt.Printf("  painting view: %4d keypoints, median global count %d\n", len(pk), pm)
	fmt.Printf("  floor view:    %4d keypoints, median global count %d\n", len(fk), fm)

	// Bandwidth comparison for one query frame of the painting.
	cam := visualprint.CameraFacing(world, paintings[0], 2.5, 0.1, 0, 200, 150)
	fr, err := visualprint.Render(world, cam)
	if err != nil {
		log.Fatal(err)
	}
	kps := visualprint.ExtractKeypoints(fr.Image, sc)
	png, _ := visualprint.EncodeFrame(fr.Image, visualprint.EncodingPNG, 0)
	allKp := visualprint.MarshalKeypoints(kps)
	sel, err := oracle.SelectUnique(kps, 200)
	if err != nil {
		log.Fatal(err)
	}
	fp := visualprint.MarshalKeypoints(sel)
	// The fingerprint size is resolution-independent (a fixed number of
	// keypoints); the frame grows with the sensor. Scale the frame to a
	// 1080p-equivalent, as a phone camera would produce.
	hiRes := float64(1920*1080) / float64(cam.W*cam.H)
	frameKB := float64(len(png)) * hiRes / 1024
	fmt.Println("\nper-query upload for this frame (1080p-equivalent camera):")
	fmt.Printf("  whole frame (PNG):        %7.1f KB\n", frameKB)
	fmt.Printf("  all %4d keypoints:       %7.1f KB (scales with resolution too)\n",
		len(kps), float64(len(allKp))*hiRes/1024)
	fmt.Printf("  VisualPrint fingerprint:  %7.1f KB (%d most-unique keypoints)\n",
		float64(len(fp))/1024, len(sel))
	if len(fp) > 0 {
		fmt.Printf("  reduction vs whole frame: %.1fx\n", frameKB/(float64(len(fp))/1024))
	}
}
