// Command office exercises the dead-reckoning drift problem and its ICP
// correction in the office venue: the wardriving rig's pose estimate drifts
// as the user walks, corrupting the keypoint-to-3D map; merging the depth
// snapshots with iterative closest point pulls positions back (the paper's
// "Positioning Error and Uniqueness" challenge). The example reports map
// error before and after correction, and the effect on end-to-end
// localization.
//
//	go run ./examples/office
package main

import (
	"fmt"
	"log"

	"visualprint"
)

func main() {
	world := visualprint.NewOfficeWorld(9)

	wd := visualprint.DefaultWardriveConfig()
	wd.ImageW, wd.ImageH = 180, 135
	wd.StepMeters = 4
	wd.RowSpacing = 6
	wd.Drift.PosStddevPerMeter = 0.08 // a deliberately bad IMU

	snaps, err := visualprint.Wardrive(world, wd)
	if err != nil {
		log.Fatal(err)
	}
	before, after, err := visualprint.CorrectDrift(snaps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wardrive: %d snapshots\n", len(snaps))
	fmt.Printf("map error: %.2f m before ICP, %.2f m after\n", before, after)
	fmt.Println("(drift correction accepts only confidently-aligned snapshots;")
	fmt.Println(" in plane-dominated venues in-plane drift is unobservable to")
	fmt.Println(" point-to-point ICP, so gains are modest — see EXPERIMENTS.md)")

	// Build the cloud database from the corrected map and localize a few
	// fresh viewpoints.
	pipeline, err := visualprint.NewPipeline(world, visualprint.DefaultServerConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := pipeline.Server.Ingest(visualprint.MappingsFrom(snaps)); err != nil {
		log.Fatal(err)
	}
	pipeline.Oracle = pipeline.Server.Database().Oracle()

	pois := world.POIsOfKind(visualprint.POIUnique)
	trials, sum := 0, 0.0
	for i := 0; i < len(pois) && trials < 5; i++ {
		cam := visualprint.CameraFacing(world, pois[i], 3.0, 0.25, 0, 180, 135)
		res, _, err := pipeline.Localize(cam)
		if err != nil {
			continue
		}
		e := res.Position.Dist(cam.Pos)
		fmt.Printf("  query %d: error %.2f m (%d clustered matches)\n", trials, e, res.Matched)
		sum += e
		trials++
	}
	if trials == 0 {
		log.Fatal("no query succeeded")
	}
	fmt.Printf("mean localization error over %d queries: %.2f m\n", trials, sum/float64(trials))
}
