package visualprint

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"
)

func randomMappings(seed int64, n int) []Mapping {
	rng := rand.New(rand.NewSource(seed))
	ms := make([]Mapping, n)
	for i := range ms {
		for j := range ms[i].Desc {
			ms[i].Desc[j] = byte(rng.Intn(256))
		}
		ms[i].Pos = Vec3{X: rng.Float64() * 10, Y: rng.Float64() * 3, Z: rng.Float64() * 8}
	}
	return ms
}

func oracleWireBytes(t *testing.T, o *Oracle) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := o.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPipelineOracleSyncMirror: the in-process handle mirrors the
// networked OracleSync semantics — full sync, unchanged ack, delta on
// top — lands byte-equal to the engine's oracle, and installs the result
// as the pipeline's filtering oracle.
func TestPipelineOracleSyncMirror(t *testing.T) {
	p, err := NewPipeline(smallWorld(), DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Server.Close() })
	ctx := context.Background()
	if err := p.Server.Ingest(randomMappings(4, 30)); err != nil {
		t.Fatal(err)
	}

	h := p.OracleSync()
	if _, _, ok := h.Version(); ok {
		t.Fatal("fresh handle claims a version")
	}
	o, err := h.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := p.Server.VenueOracle("")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oracleWireBytes(t, o), oracleWireBytes(t, truth)) {
		t.Fatal("synced oracle differs from the engine's")
	}
	if p.Oracle != o {
		t.Fatal("sync did not install the pipeline's filtering oracle")
	}
	full := h.TransferBytes()
	if _, err := h.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if got := h.TransferBytes() - full; got != 16 {
		t.Fatalf("unchanged sync cost %d bytes, want the 16-byte version stamp", got)
	}

	if err := p.Server.Ingest(randomMappings(5, 3)); err != nil {
		t.Fatal(err)
	}
	before := h.TransferBytes()
	o2, err := h.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	deltaCost := h.TransferBytes() - before
	if deltaCost >= full {
		t.Fatalf("small-batch delta cost %d >= initial full sync %d", deltaCost, full)
	}
	truth, err = p.Server.VenueOracle("")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oracleWireBytes(t, o2), oracleWireBytes(t, truth)) {
		t.Fatal("delta sync diverged from the engine's oracle")
	}
	if epoch, inserts, ok := h.Version(); !ok || epoch < 2 || inserts != o2.Inserts() {
		t.Fatalf("version after delta sync = (%d, %d, %v)", epoch, inserts, ok)
	}
}

// TestPipelineOracleWatch: the in-process Watch delivers the current state
// immediately, then a coalesced update per epoch advance; canceling the
// context closes the channel.
func TestPipelineOracleWatch(t *testing.T) {
	p, err := NewPipeline(smallWorld(), DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Server.Close() })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := p.Server.Ingest(randomMappings(6, 20)); err != nil {
		t.Fatal(err)
	}

	updates, err := p.OracleSync().Watch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	recv := func() OracleUpdate {
		select {
		case u, ok := <-updates:
			if !ok {
				t.Fatal("update channel closed early")
			}
			return u
		case <-time.After(20 * time.Second):
			t.Fatal("timed out waiting for an update")
			return OracleUpdate{}
		}
	}
	first := recv()
	if first.Err != nil || first.Oracle == nil {
		t.Fatalf("initial update = %+v", first)
	}
	if err := p.Server.Ingest(randomMappings(7, 5)); err != nil {
		t.Fatal(err)
	}
	second := recv()
	if second.Err != nil || second.Epoch <= first.Epoch {
		t.Fatalf("post-ingest update = (epoch %d, err %v), first epoch %d", second.Epoch, second.Err, first.Epoch)
	}
	truth, err := p.Server.VenueOracle("")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oracleWireBytes(t, second.Oracle), oracleWireBytes(t, truth)) {
		t.Fatal("watched oracle differs from the engine's")
	}

	cancel()
	select {
	case _, open := <-updates:
		if open {
			if _, open = <-updates; open {
				t.Fatal("update channel still open after cancel")
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("update channel not closed after cancel")
	}
}

// TestOracleSyncOverPublicAPI: the README quick-start shape — Connect,
// OracleSync, Watch — works end to end through the exported surface, and
// the deprecated FetchOracle wrapper still agrees with it.
func TestOracleSyncOverPublicAPI(t *testing.T) {
	srv, err := NewServer(DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Ingest(randomMappings(9, 25)); err != nil {
		t.Fatal(err)
	}
	c, err := Connect(addr.String(), WithClientLogger(nil))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	h := c.OracleSync()
	updates, err := h.Watch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var got OracleUpdate
	select {
	case got = <-updates:
	case <-time.After(20 * time.Second):
		t.Fatal("no initial update")
	}
	if got.Err != nil || got.Oracle == nil {
		t.Fatalf("initial update = %+v", got)
	}
	legacy, _, err := c.FetchOracle(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oracleWireBytes(t, got.Oracle), oracleWireBytes(t, legacy)) {
		t.Fatal("OracleSync and the deprecated FetchOracle disagree")
	}
}
