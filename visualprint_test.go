package visualprint

import (
	"context"
	"testing"
)

func smallWorld() *World {
	return BuildWorld(VenueSpec{
		Name: "api-test", Width: 14, Depth: 10, Height: 3,
		Aisles: 0, PanelWidth: 2,
		UniqueFrac: 0.65, RepeatedFrac: 0.15,
		Seed: 21, TileSize: 0.5,
	})
}

func fastWardrive() WardriveConfig {
	cfg := DefaultWardriveConfig()
	cfg.ImageW, cfg.ImageH = 180, 135
	cfg.StepMeters = 2.5
	cfg.RowSpacing = 4
	cfg.MaxKeypointsPerFrame = 200
	return cfg
}

func TestWorldConstructors(t *testing.T) {
	for _, w := range []*World{
		NewOfficeWorld(1), NewCafeteriaWorld(1), NewGroceryWorld(1), NewGalleryWorld(1),
	} {
		if len(w.Surfaces) == 0 || len(w.POIs) == 0 {
			t.Errorf("%s: empty world", w.Name)
		}
	}
}

func TestExtractKeypointsViaPublicAPI(t *testing.T) {
	w := smallWorld()
	pois := w.POIsOfKind(POIUnique)
	if len(pois) == 0 {
		t.Fatal("no unique POIs")
	}
	cam := CameraFacing(w, pois[0], 3, 0, 0, 160, 120)
	fr, err := Render(w, cam)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSiftConfig()
	cfg.ContrastThreshold = 0.02
	kps := ExtractKeypoints(fr.Image, cfg)
	if len(kps) < 10 {
		t.Errorf("only %d keypoints through the public API", len(kps))
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is slow")
	}
	w := smallWorld()
	p, err := NewPipeline(w, DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.SelectCount = 60
	n, err := p.Wardrive(fastWardrive(), false)
	if err != nil {
		t.Fatal(err)
	}
	if n < 500 {
		t.Fatalf("only %d mappings ingested", n)
	}
	if p.Oracle == nil {
		t.Fatal("oracle not installed after wardrive")
	}

	pois := w.POIsOfKind(POIUnique)
	good := 0
	tried := 0
	for i := 0; i < len(pois) && tried < 3; i++ {
		cam := CameraFacing(w, pois[i], 3.0, 0.2, 0, 180, 135)
		res, stats, err := p.Localize(cam)
		if err != nil {
			continue
		}
		tried++
		if stats.UploadedKeypoints > p.SelectCount {
			t.Fatalf("uploaded %d > SelectCount %d", stats.UploadedKeypoints, p.SelectCount)
		}
		if stats.UploadBytes >= 100_000 {
			t.Fatalf("upload bytes %d not an order below whole frames", stats.UploadBytes)
		}
		if res.Position.Dist(cam.Pos) < 3 {
			good++
		}
	}
	if good == 0 {
		t.Error("no successful localization through the public pipeline")
	}
}

func TestCorrectDriftBoundedHarm(t *testing.T) {
	if testing.Short() {
		t.Skip("drift correction test is slow")
	}
	// Point-to-point ICP cannot observe in-plane drift in plane-dominated
	// venues (see EXPERIMENTS.md, "ICP — honest negative result"), so the
	// contract for CorrectDrift is bounded harm: acceptance gating must
	// keep the corrected map close to (or better than) the drifted one,
	// never corrupt it wholesale.
	w := smallWorld()
	cfg := fastWardrive()
	cfg.Drift.PosStddevPerMeter = 0.08
	snaps, err := Wardrive(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before, after, err := CorrectDrift(snaps)
	if err != nil {
		t.Fatal(err)
	}
	if before <= 0 {
		t.Fatalf("no drift to correct (before=%v)", before)
	}
	if after > before*1.3+0.1 {
		t.Errorf("ICP corrupted the map: %.3f -> %.3f", before, after)
	}
}

func TestMappingsFromPreservesCount(t *testing.T) {
	w := smallWorld()
	cfg := fastWardrive()
	cfg.CloudStride = 0
	snaps, err := Wardrive(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := range snaps {
		total += len(snaps[i].Obs)
	}
	if got := len(MappingsFrom(snaps)); got != total {
		t.Errorf("mappings %d != observations %d", got, total)
	}
}

func TestQueryUploadBytesScale(t *testing.T) {
	// 200-keypoint fingerprints must be ~30 KB (the paper's estimate) and
	// far below a whole frame.
	b := QueryUploadBytes(200)
	if b < 20_000 || b > 40_000 {
		t.Errorf("200-keypoint query = %d bytes, want ~30 KB", b)
	}
}

func TestPipelineBlurGate(t *testing.T) {
	w := smallWorld()
	p, err := NewPipeline(w, DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.BlurThreshold = 1e9 // impossible threshold: everything is "blurred"
	cam := CameraFacing(w, w.POIs[0], 3, 0, 0, 120, 90)
	fr, err := Render(w, cam)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.LocalizeFrame(fr); err != ErrFrameBlurred {
		t.Errorf("want ErrFrameBlurred, got %v", err)
	}
}

func TestBlurScorePublicAPI(t *testing.T) {
	w := smallWorld()
	cam := CameraFacing(w, w.POIsOfKind(POIUnique)[0], 2.5, 0, 0, 120, 90)
	fr, err := Render(w, cam)
	if err != nil {
		t.Fatal(err)
	}
	sharp := BlurScore(fr.Image)
	blurred := BlurScore(MotionBlur(fr.Image, 9))
	if blurred >= sharp {
		t.Errorf("blur score did not drop: %v -> %v", sharp, blurred)
	}
}

func TestRunSessionPublicAPI(t *testing.T) {
	res, err := RunSession(SessionConfig{
		FPS: 30, Duration: 2e9, // 2 s
		ExtractTime: 50e6, FilterTime: 2e6,
		UploadBytes: 29000,
		Link:        Link{UplinkMbps: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed == 0 || res.Processed+res.Stale+res.Blurred != len(res.Frames) {
		t.Errorf("session accounting: %+v", res)
	}
}

func TestOracleDiffPublicAPI(t *testing.T) {
	o, err := NewOracle(ScaledOracleParams())
	if err != nil {
		t.Fatal(err)
	}
	d := make([]byte, 128)
	d[3] = 200
	o.Insert(d)
	old, err := o.Clone()
	if err != nil {
		t.Fatal(err)
	}
	d2 := make([]byte, 128)
	d2[7] = 180
	o.Insert(d2)
	diff, err := OracleDiff(old, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyOracleDiff(old, diff); err != nil {
		t.Fatal(err)
	}
	u1, _ := o.Uniqueness(d2)
	u2, _ := old.Uniqueness(d2)
	if u1 != u2 {
		t.Errorf("patched oracle disagrees: %d vs %d", u2, u1)
	}
}

func TestServerListenAndConnect(t *testing.T) {
	srv, err := NewServer(DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Connect(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Ingest(context.Background(), []Mapping{{}}); err != nil {
		t.Fatal(err)
	}
	n, err := c.Stats(context.Background())
	if err != nil || n != 1 {
		t.Fatalf("stats = %d, err = %v", n, err)
	}
}
